"""Async evaluation service: served results, coalescing, deterministic
load-test replay, structured error paths.

The daemon is spun up in-process (ephemeral port, ``workers=1`` — a
single worker thread, so compute scheduling is fully deterministic) and
driven through the real front-ends: raw HTTP bytes, the sync/async
clients, and the unix line protocol.
"""

import asyncio
import json
import time

import pytest

from repro.errors import SimulationError
from repro.sim import engine
from repro.sim.client import AsyncEvalClient, EvalClient
from repro.sim.engine import EvalTask, evaluate_cell, task_to_dict
from repro.sim.server import EvalServer, MAX_CELLS_PER_QUERY, _parse_query
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepSpec

TASK = EvalTask("EPCM-MM", "gcc", 300, 7)
OTHER = EvalTask("EPCM-MM", "mcf", 300, 7)
BURST = EvalTask("EPCM-MM", "lbm", 300, 7)


def run_scenario(scenario, **server_kwargs):
    """Start a fresh daemon, run the async scenario against it, always
    stop it — the shared harness of every test here."""
    async def wrapper():
        server = EvalServer(port=0, **server_kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()
    return asyncio.run(wrapper())


def slow_compute(monkeypatch, delay=0.25):
    """Slow every cell evaluation down by ``delay`` seconds.

    Concurrency tests need the guarantee that *all* concurrent requests
    arrive while the first computation is still in flight; a loopback
    connect takes microseconds, so a quarter second makes the coalescing
    outcome deterministic instead of a race.  Applies to the in-process
    worker thread (``workers=1``), which is how every test here runs.
    """
    real = engine.evaluate_cell

    def delayed(task):
        time.sleep(delay)
        return real(task)
    monkeypatch.setattr(engine, "evaluate_cell", delayed)


async def raw_http(port, method, path, body=b""):
    """One raw HTTP exchange → (status, parsed-JSON body).

    Bypasses the clients on purpose: the malformed-request tests need
    to send bytes no well-behaved client would produce.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(body)}\r\n")
    writer.write(head.encode() + b"\r\n" + body)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = json.loads(await reader.readexactly(length))
    writer.close()
    await writer.wait_closed()
    return status, payload


class TestServedResults:
    def test_miss_is_bit_identical_to_direct_evaluate_cell(self):
        async def scenario(server):
            return await AsyncEvalClient(server.http_address).eval_cell(TASK)
        served = run_scenario(scenario)
        assert served == evaluate_cell(TASK)   # dataclass eq: every field,
        # including the full per-request latency list, bit-for-bit

    def test_store_read_through_skips_compute(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(TASK, evaluate_cell(TASK))

        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            stats = await client.eval_cell(TASK)
            return stats, await client.stats()
        stats, counters = run_scenario(scenario, store=store)
        assert stats == evaluate_cell(TASK)
        assert counters["store_hits"] == 1
        assert counters["computed"] == 0

    def test_computed_cell_written_back_to_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")

        async def scenario(server):
            await AsyncEvalClient(server.http_address).eval_cell(TASK)
        run_scenario(scenario, store=store)
        assert store.get(TASK) == evaluate_cell(TASK)

    def test_lru_short_circuits_repeat_queries(self):
        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            first = await client.eval_cell(TASK)
            second = await client.eval_cell(TASK)
            return first, second, await client.stats()
        first, second, counters = run_scenario(scenario)
        assert first == second
        assert counters["computed"] == 1
        assert counters["lru_hits"] == 1

    def test_batch_query_matches_direct(self):
        tasks = [TASK, OTHER]

        async def scenario(server):
            return await AsyncEvalClient(server.http_address).eval_tasks(tasks)
        lookup = run_scenario(scenario)
        for task in tasks:
            assert lookup[task] == evaluate_cell(task)

    def test_sweep_query_expands_server_side(self):
        spec = SweepSpec(architectures=("EPCM-MM",),
                         workloads=("gcc", "mcf"),
                         num_requests=(300,), seeds=(7,))

        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            return await client.eval_sweep(spec), await client.stats()
        lookup, counters = run_scenario(scenario)
        assert set(lookup) == set(spec.tasks())
        assert counters["cells"] == spec.num_cells
        for task, stats in lookup.items():
            assert stats == evaluate_cell(task)

    def test_latencies_false_trims_the_samples(self):
        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            return await client.eval_cell(TASK, latencies=False)
        lean = run_scenario(scenario)
        assert lean.latencies_ns == []
        assert lean.bandwidth_gbps == evaluate_cell(TASK).bandwidth_gbps

    def test_sync_client_over_unix_line_protocol(self, tmp_path):
        sock = tmp_path / "eval.sock"

        async def scenario(server):
            loop = asyncio.get_running_loop()

            def sync_part():
                client = EvalClient(f"unix://{sock}")
                assert client.ping()
                stats = client.eval_cell(TASK)
                counters = client.stats()
                return stats, counters
            return await loop.run_in_executor(None, sync_part)
        stats, counters = run_scenario(scenario, unix_path=sock)
        assert stats == evaluate_cell(TASK)
        assert counters["computed"] == 1

    def test_async_ping_matches_sync_health_surface(self):
        # The membership prober runs on AsyncEvalClient.ping; it must
        # see the same /healthz surface the sync client does.
        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            return await client.ping(), await client.health()
        alive, health = run_scenario(scenario)
        assert alive is True
        assert health["ok"] is True
        assert health["uptime_s"] >= 0
        assert health["workers"] >= 1

    def test_async_ping_false_when_unreachable(self):
        async def scenario(server):
            address = server.http_address
            await server.stop()
            return await AsyncEvalClient(address, retries=0).ping()
        assert run_scenario(scenario) is False


class TestCoalescing:
    def test_16_concurrent_identical_queries_trigger_one_compute(
            self, monkeypatch):
        slow_compute(monkeypatch)

        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            results = await asyncio.gather(
                *(client.eval_cell(BURST) for _ in range(16)))
            return results, await client.stats()
        results, counters = run_scenario(scenario)
        direct = evaluate_cell(BURST)
        assert all(stats == direct for stats in results)
        # The coalescing contract, observable in /stats: exactly one
        # computation, the other fifteen joined it in flight.
        assert counters["computed"] == 1
        assert counters["coalesced"] == 15
        assert counters["cells"] == 16

    def test_coalesced_compute_failure_reaches_every_waiter(self,
                                                            monkeypatch):
        def boom(task):
            raise ValueError("boom")
        monkeypatch.setattr(engine, "evaluate_cell", boom)

        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            errors = []
            for result in await asyncio.gather(
                    *(client.eval_cell(BURST) for _ in range(4)),
                    return_exceptions=True):
                assert isinstance(result, SimulationError)
                errors.append(str(result))
            return errors, await client.stats()
        errors, counters = run_scenario(scenario)
        assert len(errors) == 4
        for message in errors:
            assert "grid cell (" in message and "boom" in message
        assert counters["computed"] == 0


class TestLoadReplay:
    """The scripted load-test harness: a fixed mix of hits, misses,
    malformed requests and duplicate bursts, replayed against a fresh
    daemon — responses must be identical across replays and misses
    bit-identical to direct computation."""

    MIX = [TASK, OTHER, TASK, BURST, OTHER, TASK]

    async def _replay(self, server):
        client = AsyncEvalClient(server.http_address)
        transcript = []
        # Sequential section: misses, then hits of the same cells.
        for task in self.MIX:
            status, payload = await raw_http(
                server.port, "POST", "/eval",
                json.dumps({"task": task_to_dict(task)}).encode())
            transcript.append((status, json.dumps(payload, sort_keys=True)))
        # Malformed + unknown-arch requests interleave with real load.
        status, payload = await raw_http(server.port, "POST", "/eval",
                                         b"{definitely not json")
        transcript.append((status, json.dumps(payload, sort_keys=True)))
        status, payload = await raw_http(
            server.port, "POST", "/eval",
            json.dumps({"task": {"architecture": "NOPE",
                                 "workload": "gcc"}}).encode())
        transcript.append((status, json.dumps(payload, sort_keys=True)))
        # Duplicate burst: concurrent identical queries.  *Which* of the
        # eight wins the race to compute is scheduling-dependent, so the
        # transcript records the sorted response set — with the
        # slowed-down compute all eight are guaranteed in flight
        # together, so the multiset (1 computed + 7 coalesced, equal
        # stats) is deterministic.
        burst_task = EvalTask("EPCM-MM", "omnetpp", 300, 7)
        responses = await asyncio.gather(*(
            raw_http(server.port, "POST", "/eval",
                     json.dumps({"task": task_to_dict(burst_task)}).encode())
            for _ in range(8)))
        transcript.extend(sorted(
            (status, json.dumps(payload, sort_keys=True))
            for status, payload in responses))
        counters = await client.stats()
        counters.pop("store")    # tmp dir differs between replays
        transcript.append((200, json.dumps(counters, sort_keys=True)))
        return transcript

    def test_replay_is_deterministic_and_matches_direct(self, tmp_path,
                                                        monkeypatch):
        slow_compute(monkeypatch, delay=0.1)
        transcripts = []
        for run in ("one", "two"):
            store = ResultStore(tmp_path / f"store-{run}")
            transcripts.append(
                run_scenario(self._replay, store=store, workers=1))
        assert transcripts[0] == transcripts[1]

        # Spot-check the first miss against direct computation: the
        # served stats dict is exactly SimStats.to_dict.
        status, body = transcripts[0][0]
        assert status == 200
        first = json.loads(body)["results"][0]
        assert first["stats"] == json.loads(
            json.dumps(evaluate_cell(TASK).to_dict()))
        # Errors are structured, not hung connections.
        assert transcripts[0][len(self.MIX)][0] == 400
        assert transcripts[0][len(self.MIX) + 1][0] == 400

    @pytest.mark.slow
    def test_heavy_replay_is_deterministic(self, tmp_path):
        """The long mix: every SPEC workload x two architectures, three
        passes with bursts — slow, run with --runslow."""
        from repro.sim.tracegen import SPEC_WORKLOADS

        tasks = [EvalTask(arch, workload, 2000, 7)
                 for arch in ("EPCM-MM", "2D_DDR3")
                 for workload in sorted(SPEC_WORKLOADS)]

        async def replay(server):
            client = AsyncEvalClient(server.http_address)
            transcript = []
            for _ in range(3):
                lookup = await client.eval_tasks(tasks)
                transcript.append(
                    {t.describe(): lookup[t].to_dict() for t in tasks})
                bursts = await asyncio.gather(
                    *(client.eval_cell(tasks[0]) for _ in range(16)))
                assert all(b == bursts[0] for b in bursts)
            counters = await client.stats()
            counters.pop("store")
            transcript.append(counters)
            return transcript

        first = run_scenario(replay, store=ResultStore(tmp_path / "s1"))
        second = run_scenario(replay, store=ResultStore(tmp_path / "s2"))
        assert first == second
        assert first[0] == {t.describe(): evaluate_cell(t).to_dict()
                            for t in tasks}


class TestErrorPaths:
    """Malformed and failing queries come back as structured JSON
    errors with 4xx/5xx statuses — never a hang or a raw traceback."""

    def _status_of(self, payload, **server_kwargs):
        async def scenario(server):
            body = payload if isinstance(payload, bytes) \
                else json.dumps(payload).encode()
            return await raw_http(server.port, "POST", "/eval", body)
        return run_scenario(scenario, **server_kwargs)

    def test_malformed_json_is_400(self):
        status, body = self._status_of(b"{not json at all")
        assert status == 400
        assert body["ok"] is False and "malformed JSON" in body["error"]

    def test_unknown_architecture_is_400(self):
        status, body = self._status_of(
            {"task": {"architecture": "NOPE", "workload": "gcc"}})
        assert status == 400
        assert "unknown architecture 'NOPE'" in body["error"]

    def test_unknown_workload_is_400(self):
        status, body = self._status_of(
            {"task": {"architecture": "COMET", "workload": "doom"}})
        assert status == 400
        assert body["ok"] is False

    def test_bad_field_types_are_400(self):
        for task in (
            {"architecture": "COMET", "workload": "gcc",
             "num_requests": "many"},
            {"architecture": "COMET", "workload": "gcc", "seed": True},
            {"architecture": "COMET", "workload": "gcc", "queue_depth": 0},
            {"architecture": "COMET", "workload": "gcc", "bogus": 1},
        ):
            status, body = self._status_of({"task": task})
            assert status == 400, task
            assert body["ok"] is False

    def test_query_shape_errors_are_400(self):
        for payload in (
            [],                                   # not an object
            {},                                   # no source
            {"task": {}, "tasks": []},            # two sources
            {"tasks": []},                        # empty batch
            {"task": {"architecture": "COMET", "workload": "gcc"},
             "latencies": "yes"},                 # non-bool latencies
            {"sweep": {"bogus_axis": [1]}},       # unknown sweep axis
            {"sweep": {"num_requests": ["many"]}},
        ):
            status, body = self._status_of(payload)
            assert status == 400, payload
            assert body["ok"] is False and body["error"]

    def test_oversized_sweep_is_rejected_up_front(self):
        status, body = self._status_of(
            {"sweep": {"architectures": ["EPCM-MM"],
                       "workloads": ["gcc"],
                       "seeds": list(range(MAX_CELLS_PER_QUERY + 1))}})
        assert status == 400
        assert str(MAX_CELLS_PER_QUERY) in body["error"]

    def test_huge_axis_product_rejected_before_expansion(self):
        """The cell cap must fire on the axis *product*, before the
        cross product is materialized — two 10k-element axes expand to
        10^8 tasks, which would wedge the daemon if built first."""
        status, body = self._status_of(
            {"sweep": {"architectures": ["EPCM-MM"],
                       "workloads": ["gcc"],
                       "seeds": list(range(10_000)),
                       "num_requests": list(range(1, 10_001))}})
        assert status == 400
        assert str(MAX_CELLS_PER_QUERY) in body["error"]

    def test_out_of_range_seed_is_400_not_worker_error(self):
        for seed in (-1, 2 ** 32):
            status, body = self._status_of(
                {"task": {"architecture": "COMET", "workload": "gcc",
                          "seed": seed}})
            assert status == 400, seed
            assert "seed" in body["error"]
        status, body = self._status_of(
            {"sweep": {"architectures": ["EPCM-MM"],
                       "workloads": ["gcc"], "seeds": [-1]}})
        assert status == 400
        assert "seed" in body["error"]

    def test_oversized_cell_request_count_is_400(self):
        from repro.sim.server import MAX_REQUESTS_PER_CELL

        status, body = self._status_of(
            {"task": {"architecture": "COMET", "workload": "gcc",
                      "num_requests": MAX_REQUESTS_PER_CELL + 1}})
        assert status == 400
        assert "request limit" in body["error"]

    def test_unknown_path_and_method(self):
        async def scenario(server):
            missing = await raw_http(server.port, "GET", "/nope")
            wrong = await raw_http(server.port, "GET", "/eval")
            return missing, wrong
        (missing_status, missing_body), (wrong_status, wrong_body) = \
            run_scenario(scenario)
        assert missing_status == 404 and missing_body["ok"] is False
        assert wrong_status == 405 and "POST" in wrong_body["error"]

    def test_worker_crash_annotates_the_failing_cell(self, monkeypatch):
        """A cell dying mid-compute surfaces like the sweep path: a 5xx
        JSON error naming the cell, not a worker traceback."""
        def boom(task):
            raise ValueError("synthetic crash")
        monkeypatch.setattr(engine, "evaluate_cell", boom)

        async def scenario(server):
            return await raw_http(
                server.port, "POST", "/eval",
                json.dumps({"task": task_to_dict(TASK)}).encode())
        status, body = run_scenario(scenario)
        assert status == 500
        assert body["ok"] is False
        assert f"grid cell ({TASK.describe()})" in body["error"]
        assert "synthetic crash" in body["error"]

    def test_server_survives_a_crashed_cell(self, monkeypatch):
        real = engine.evaluate_cell
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first one dies")
            return real(task)
        monkeypatch.setattr(engine, "evaluate_cell", flaky)

        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            with pytest.raises(SimulationError):
                await client.eval_cell(TASK)
            stats = await client.eval_cell(TASK)    # recovered
            return stats, await client.stats()
        stats, counters = run_scenario(scenario)
        assert stats == evaluate_cell(TASK)
        assert counters["errors"] == 1

    def test_broken_executor_rebuilds_the_pool_once(self, monkeypatch):
        """A hard worker death (BrokenExecutor) must replace the compute
        pool and keep serving; the error names the cell."""
        from concurrent.futures import BrokenExecutor

        from repro.sim import server as server_mod

        real = server_mod.evaluate_cell_checked
        calls = {"n": 0}

        def dying(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BrokenExecutor("worker vanished")
            return real(task)
        monkeypatch.setattr(server_mod, "evaluate_cell_checked", dying)

        async def scenario(server):
            client = AsyncEvalClient(server.http_address)
            old_pool = server._compute
            with pytest.raises(SimulationError, match="worker died"):
                await client.eval_cell(TASK)
            rebuilt = server._compute
            stats = await client.eval_cell(TASK)
            return old_pool is rebuilt, stats
        same_pool, stats = run_scenario(scenario)
        assert not same_pool
        assert stats == evaluate_cell(TASK)

    def test_parse_query_rejects_non_dict_tasks(self):
        with pytest.raises(SimulationError):
            _parse_query({"tasks": ["COMET"]})


class TestLineProtocol:
    def test_ops_over_unix_socket(self, tmp_path):
        sock = tmp_path / "eval.sock"

        async def scenario(server):
            reader, writer = await asyncio.open_unix_connection(str(sock))

            async def roundtrip(message):
                writer.write(message if isinstance(message, bytes)
                             else json.dumps(message).encode())
                writer.write(b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            ping = await roundtrip({"op": "ping"})
            evaluated = await roundtrip({"op": "eval",
                                         "task": task_to_dict(TASK)})
            implicit = await roundtrip({"task": task_to_dict(TASK)})
            malformed = await roundtrip(b"{nope")
            unknown = await roundtrip({"op": "teleport"})
            stats = await roundtrip({"op": "stats"})
            writer.close()
            await writer.wait_closed()
            return ping, evaluated, implicit, malformed, unknown, stats

        ping, evaluated, implicit, malformed, unknown, stats = \
            run_scenario(scenario, unix_path=tmp_path / "eval.sock")
        # The line ping carries the same enriched health payload as
        # GET /healthz, plus the protocol's pong marker.
        assert ping["ok"] is True and ping["pong"] is True
        assert ping["uptime_s"] >= 0 and ping["inflight"] == 0
        assert evaluated["ok"] and implicit["ok"]
        assert evaluated["results"][0]["source"] == "computed"
        assert implicit["results"][0]["source"] == "lru"
        assert malformed["ok"] is False
        assert unknown["ok"] is False and "teleport" in unknown["error"]
        assert stats["stats"]["computed"] == 1

    def test_shutdown_op_stops_the_serve_loop(self, tmp_path):
        sock = tmp_path / "eval.sock"

        async def scenario():
            server = EvalServer(port=0, unix_path=sock)
            serve = asyncio.ensure_future(server.serve_until_shutdown())
            await asyncio.sleep(0)          # let it bind
            for _ in range(50):
                if server._servers:
                    break
                await asyncio.sleep(0.05)
            reader, writer = await asyncio.open_unix_connection(str(sock))
            writer.write(b'{"op": "shutdown"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await asyncio.wait_for(serve, timeout=10)
            return reply
        reply = asyncio.run(scenario())
        assert reply == {"ok": True, "shutting_down": True}


class TestHttpMisc:
    def test_healthz_and_stats(self):
        async def scenario(server):
            health = await raw_http(server.port, "GET", "/healthz")
            stats = await raw_http(server.port, "GET", "/stats")
            return health, stats
        (health_status, health), (stats_status, stats) = run_scenario(scenario)
        # {"ok": true} compatibility preserved; the enriched payload
        # (uptime, in-flight count, pool kind/size) is what the fabric
        # prober and `fabric stats` read.
        assert health_status == 200 and health["ok"] is True
        assert health["uptime_s"] >= 0
        assert health["inflight"] == 0
        assert health["workers"] >= 1
        assert isinstance(health["executor"], str)
        assert stats_status == 200
        for key in ("queries", "cells", "computed", "coalesced",
                    "store_hits", "lru_hits", "errors", "inflight",
                    "workers", "executor"):
            assert key in stats["stats"]

    def test_stats_kernel_counts_process_pool_dispatches(self):
        """Satellite of the pool abstraction: a process-pool server
        merges the workers' per-cell kernel-counter deltas, so
        /stats.kernel no longer reads zero for fanned-out computes."""
        from repro.sim import controller as controller_mod

        async def scenario(server):
            if server.executor_kind != "process":
                return None
            await AsyncEvalClient(server.http_address).eval_cell(TASK)
            return server.stats_snapshot()

        controller_mod.reset_kernel_counters()
        stats = run_scenario(scenario, workers=2, pool="fork")
        if stats is None:
            pytest.skip("process pools unavailable in this sandbox")
        assert stats["executor"] == "process"
        assert stats["kernel"]["fast"] == 1
        assert stats["kernel"]["fast_shared_bus"] == 1

    def test_http_shutdown_endpoint(self):
        async def scenario():
            server = EvalServer(port=0)
            serve = asyncio.ensure_future(server.serve_until_shutdown())
            for _ in range(50):
                if server._servers:
                    break
                await asyncio.sleep(0.05)
            status, body = await raw_http(server.port, "POST", "/shutdown")
            await asyncio.wait_for(serve, timeout=10)
            return status, body
        status, body = asyncio.run(scenario())
        assert status == 200 and body["shutting_down"] is True


class TestFig9ReadThrough:
    def test_warm_daemon_answers_fig9_grid_with_zero_recomputes(
            self, tmp_path):
        """The acceptance scenario, scaled to tier-1: a repeated fig9
        query set against a warm daemon computes nothing the second
        time (store + LRU hits only, verified via /stats)."""
        from repro.exp import fig9

        async def scenario(server):
            loop = asyncio.get_running_loop()
            address = server.http_address

            def run_fig9():
                return fig9.run(num_requests=300, workloads=["gcc"],
                                server=address)
            client = AsyncEvalClient(address)
            cold = await loop.run_in_executor(None, run_fig9)
            after_cold = await client.stats()
            warm = await loop.run_in_executor(None, run_fig9)
            after_warm = await client.stats()
            return cold, warm, after_cold, after_warm

        cold, warm, after_cold, after_warm = run_scenario(
            scenario, store=ResultStore(tmp_path / "store"))
        assert after_warm["computed"] == after_cold["computed"]
        assert cold.summary == warm.summary
        assert cold.results["COMET"]["gcc"] == warm.results["COMET"]["gcc"]

    @pytest.mark.slow
    def test_full_fig9_grid_warm_daemon(self, tmp_path):
        """Full SPEC grid through the daemon twice: zero recomputations
        on the second pass, summaries identical to the local engine."""
        from repro.exp import fig9
        from repro.sim.engine import run_evaluation
        from repro.sim.simulator import summarize

        async def scenario(server):
            loop = asyncio.get_running_loop()
            address = server.http_address

            def run_fig9():
                return fig9.run(num_requests=2000, server=address)
            client = AsyncEvalClient(address)
            cold = await loop.run_in_executor(None, run_fig9)
            after_cold = await client.stats()
            warm = await loop.run_in_executor(None, run_fig9)
            after_warm = await client.stats()
            return cold, warm, after_cold, after_warm

        cold, warm, after_cold, after_warm = run_scenario(
            scenario, store=ResultStore(tmp_path / "store"))
        assert after_warm["computed"] == after_cold["computed"]
        assert cold.summary == warm.summary
        local = summarize(run_evaluation(num_requests=2000))
        assert cold.summary == local
