"""Bench the fast-path scheduler kernels and the cold-grid pipeline.

Three acceptance gates ride this file:

* **Kernel gate** — on COMET-class cells (contention-free, per-bank
  queues) at n >= 20k, the grouped-prefix-pass kernel must beat the
  scalar per-bank recurrence it replaces by >= 5x, while remaining
  bit-identical to it.  Measured at ``KERNEL_N`` = 65536 requests per
  cell (the kernel's fixed grouping overhead amortizes with n; the
  per-cell numbers at 20480 are reported alongside).
* **Shared-bus grid gate** — the whole cold SPEC grid with every kernel
  class enabled against the *PR 5 dispatch set* (per-bank kernel only;
  shared-bus and global-queue cells on the scalar recurrence),
  reconstructed live via ``set_disabled_fast_classes``.  The compiled
  exact-twin kernels must carry the whole grid to >= 3x.
* **Cold-grid gate** — a cold full-SPEC-grid pass against the PR 4
  baseline (every cell scheduled by the previous general global-queue
  scalar recurrence).  The *photonic half* of the grid (COMET + COSMOS
  cells, the cells the paper's architecture arguments are about) must
  come out >= 1.5x faster; the whole grid keeps its >= 1.05x floor
  from PR 5 (now comfortably exceeded — the exact-twin kernels lifted
  the DRAM/EPCM cells too).
* **Pool gate** — the warm full grid (every registered architecture x
  SPEC workload) through the engine's thread pool must be bit-identical
  to serial, at least match fork-pool throughput, and run at a 100%
  compiled-kernel hit rate (per-bank cells dispatch to the compiled
  exact twin, counted by ``twin_per_bank``).

``main()`` (or the ``BENCH_KERNEL_JSON`` env var under pytest) writes
``BENCH_kernel.json`` — cold-grid wall times, per-class fast-path hit
rates and the speedups — which CI archives and gates against the
committed reference copy (hit-rate regression).

Runs standalone::

    python benchmarks/bench_controller_kernel.py [--json BENCH_kernel.json]
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict

import numpy as np

from repro.sim import controller as controller_mod
from repro.sim.engine import controller_for, run_evaluation
from repro.sim.factory import ARCHITECTURE_NAMES, known_architectures
from repro.sim.stats import kernel_dispatch_summary
from repro.sim.tracegen import SPEC_WORKLOADS, cached_trace_arrays

#: Gate operating point for the kernel (n >= 20k per the acceptance
#: criterion) and the comparison point reported alongside.
KERNEL_N = 65536
KERNEL_N_SMALL = 20480

#: Cold-grid operating point (the full-size Fig. 9 cell).
GRID_N = 20000

PHOTONIC = ("COMET", "COSMOS")


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_kernel(n: int, repeats: int = 3) -> Dict[str, float]:
    """Kernel vs scalar per-bank recurrence on the COMET SPEC cells.

    Times exactly the recurrence swap (shared precompute hoisted out),
    and re-verifies bit-identity of the full stats on every cell.
    """
    controller = controller_for("COMET")
    scalar_s = 0.0
    kernel_s = 0.0
    for name in sorted(SPEC_WORKLOADS):
        trace = cached_trace_arrays(name, n, 1)
        addresses = np.asarray(trace.addresses, dtype=np.int64)
        is_read = np.asarray(trace.is_read, dtype=bool)
        arrivals = np.asarray(trace.arrivals_ns, dtype=np.float64)
        bank_idx, array_ns, row_hits, row_misses = \
            controller._precompute(addresses, is_read)
        # Warm both paths once (first touch pays page faults on the
        # fresh trace arrays) before taking best-of-N timings.
        controller._kernel(bank_idx, array_ns, arrivals,
                           row_hits, row_misses)
        controller._recurrence_per_bank(bank_idx, array_ns, arrivals)
        kernel_s += _timeit(
            lambda: controller._kernel(bank_idx, array_ns, arrivals,
                                       row_hits, row_misses), repeats)
        scalar_s += _timeit(
            lambda: controller._recurrence_per_bank(bank_idx, array_ns,
                                                    arrivals), repeats)
        fast = controller.run_arrays(trace, workload_name=name, fast=True)
        slow = controller.run_arrays(trace, workload_name=name, fast=False)
        assert fast.to_dict() == slow.to_dict(), (name, n)
    return {"n": n, "scalar_s": scalar_s, "kernel_s": kernel_s,
            "speedup": scalar_s / kernel_s}


def _legacy_cell(controller, trace, name):
    """One cell through the PR 4 scheduling path: the general
    global-queue scalar recurrence for every device class."""
    addresses = np.asarray(trace.addresses, dtype=np.int64)
    is_read = np.asarray(trace.is_read, dtype=bool)
    arrivals = np.asarray(trace.arrivals_ns, dtype=np.float64)
    bank_idx, array_ns, row_hits, row_misses = \
        controller._precompute(addresses, is_read)
    schedule = controller._finalize(
        *controller._recurrence_generic(bank_idx, array_ns, arrivals,
                                        is_read),
        row_hits=row_hits, row_misses=row_misses)
    return controller._stats(name, is_read, trace.total_bytes, schedule)


def measure_cold_grid(n: int = GRID_N, repeats: int = 3) -> Dict[str, float]:
    """Cold full-SPEC grid: new pipeline vs the PR 4 baseline.

    Per-architecture timings take the best of ``repeats`` passes —
    single-pass wall times on shared CI runners are noisy enough to
    wobble the photonic ratio across its gate.
    """
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)          # device builds are one-time work
    names = sorted(SPEC_WORKLOADS)
    for name in names:
        cached_trace_arrays(name, n, 1)

    def legacy_pass(controller):
        for name in names:
            _legacy_cell(controller, cached_trace_arrays(name, n, 1), name)

    def shipping_pass(controller):
        # The shipping per-cell path: kernel + specialized recurrences.
        for name in names:
            controller.run_arrays(cached_trace_arrays(name, n, 1),
                                  workload_name=name)

    baseline_total = 0.0
    baseline_photonic = 0.0
    new_total = 0.0
    new_photonic = 0.0
    controller_mod.reset_kernel_counters()
    for arch in ARCHITECTURE_NAMES:
        controller = controller_for(arch)
        legacy_s = _timeit(lambda: legacy_pass(controller), repeats)
        new_s = _timeit(lambda: shipping_pass(controller), repeats)
        baseline_total += legacy_s
        new_total += new_s
        if arch in PHOTONIC:
            baseline_photonic += legacy_s
            new_photonic += new_s
    cells = len(ARCHITECTURE_NAMES) * len(names)
    # Each architecture ran `repeats` shipping passes; normalize the
    # dispatch counters back to one grid's worth of cells.
    counters = controller_mod.kernel_counters()
    fast_cells = counters["fast"] // repeats

    # The full engine pass (trace plane + persistent pool ride along
    # under fan-out; serially this adds only engine bookkeeping).
    t0 = time.perf_counter()
    run_evaluation(num_requests=n, seed=1)
    engine_s = time.perf_counter() - t0

    return {
        "n": n,
        "cells": cells,
        "baseline_s": baseline_total,
        "new_s": new_total,
        "grid_speedup": baseline_total / new_total,
        "baseline_photonic_s": baseline_photonic,
        "new_photonic_s": new_photonic,
        "photonic_speedup": baseline_photonic / new_photonic,
        "engine_cold_grid_s": engine_s,
        "fast_path_cells": fast_cells,
        "fast_path_hit_rate": fast_cells / cells,
    }


def measure_shared_bus_grid(n: int = GRID_N,
                            repeats: int = 3) -> Dict[str, object]:
    """Whole cold grid: every kernel class vs the PR 5 dispatch set.

    The PR 5 baseline is reconstructed live by disabling the shared-bus
    and global-queue kernel classes — per-bank cells still ride the
    PR 5 prefix-fold kernel, everything else runs the scalar
    recurrence — so both passes share trace caches, precompute and
    stats code, and the ratio isolates exactly the new kernels.
    """
    names = sorted(SPEC_WORKLOADS)
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)          # device builds are one-time work
    for name in names:
        cached_trace_arrays(name, n, 1)

    def grid_pass():
        for arch in ARCHITECTURE_NAMES:
            controller = controller_for(arch)
            for name in names:
                controller.run_arrays(cached_trace_arrays(name, n, 1),
                                      workload_name=name)

    grid_pass()    # warm: first use pays the exact-twin compile
    previous = controller_mod.set_disabled_fast_classes(
        {"shared_bus", "global_queue"})
    try:
        baseline_s = _timeit(grid_pass, repeats)
    finally:
        controller_mod.set_disabled_fast_classes(previous)
    controller_mod.reset_kernel_counters()
    new_s = _timeit(grid_pass, repeats)
    summary = kernel_dispatch_summary(controller_mod.kernel_counters())
    cells = len(ARCHITECTURE_NAMES) * len(names)
    return {
        "n": n,
        "cells": cells,
        "pr5_baseline_s": baseline_s,
        "new_s": new_s,
        "shared_bus_grid_speedup": baseline_s / new_s,
        "hit_rate": summary["hit_rate"],
        # _timeit ran `repeats` passes; report one grid's worth.
        "per_class": {name: count // repeats
                      for name, count in summary["per_class"].items()},
        "fallbacks": {name: count // repeats
                      for name, count in summary["fallbacks"].items()},
    }


def measure_pool_grid(n: int = GRID_N, repeats: int = 3,
                      workers: int = 2) -> Dict[str, object]:
    """Warm full grid (every registered architecture x SPEC workload)
    through the engine's pool abstraction: threads vs fork.

    Warm means device builds, trace generation and twin compilation are
    paid before the timers start, so the ratio isolates the execution
    plane itself — in-process thread submits against fork's pickling,
    IPC and trace-plane publication.  Bit-identity of the full stats
    against a serial pass is asserted for both pools on every cell,
    and the compiled-dispatch counters (``twin_per_bank`` for per-bank
    cells, the exact-twin classes for the rest) must cover the grid.
    """
    archs = known_architectures()
    names = sorted(SPEC_WORKLOADS)
    kwargs = dict(architectures=archs, workloads=names,
                  num_requests=n, seed=1)
    for arch in archs:
        controller_for(arch)          # device builds are one-time work
    for name in names:
        cached_trace_arrays(name, n, 1)
    serial = run_evaluation(workers=1, pool="serial", **kwargs)

    times: Dict[str, float] = {}
    for pool in ("threads", "fork"):
        # Warm pass builds the pool (fork additionally publishes the
        # trace plane) and checks bit-identity against serial.
        warm = run_evaluation(workers=workers, pool=pool, **kwargs)
        for arch in archs:
            for name in names:
                assert warm[arch][name].to_dict() \
                    == serial[arch][name].to_dict(), (pool, arch, name)
        times[pool] = _timeit(
            lambda: run_evaluation(workers=workers, pool=pool, **kwargs),
            repeats)

    controller_mod.reset_kernel_counters()
    run_evaluation(workers=workers, pool="threads", **kwargs)
    counters = controller_mod.kernel_counters()
    compiled = (counters["twin_per_bank"] + counters["fast_shared_bus"]
                + counters["fast_global_queue"])
    cells = len(archs) * len(names)
    return {
        "n": n,
        "cells": cells,
        "workers": workers,
        "threads_s": times["threads"],
        "fork_s": times["fork"],
        "threads_over_fork": times["fork"] / times["threads"],
        "compiled_dispatches": compiled,
        "compiled_hit_rate": compiled / cells,
        "twin_per_bank": counters["twin_per_bank"],
    }


def _emit_json(payload: Dict[str, object], path: str) -> None:
    # Merge into an existing report: pytest runs each gate as its own
    # item, and every gate contributes its own top-level key.
    merged: Dict[str, object] = {}
    try:
        with open(path) as stream:
            merged = json.load(stream)
    except (OSError, ValueError):
        pass
    merged.update(payload)
    with open(path, "w") as stream:
        json.dump(merged, stream, indent=2)
        stream.write("\n")


def _maybe_emit(payload: Dict[str, object]) -> None:
    path = os.environ.get("BENCH_KERNEL_JSON")
    if path:
        _emit_json(payload, path)


#: Wall-clock gates retry a few times: these containers / CI runners
#: share CPU, and a background burst during one side of a comparison
#: wobbles the ratio.  The gate asserts the capability (the best clean
#: measurement), not one contended sample.
GATE_ATTEMPTS = 3


def bench_kernel_speedup():
    """Acceptance gate: kernel >= 5x over the scalar recurrence."""
    best = None
    for _attempt in range(GATE_ATTEMPTS):
        at_gate = measure_kernel(KERNEL_N)
        if best is None or at_gate["speedup"] > best["speedup"]:
            best = at_gate
        if best["speedup"] >= 5.0:
            break
    at_small = measure_kernel(KERNEL_N_SMALL, repeats=2)
    print(f"\n  n={best['n']}: scalar {best['scalar_s']*1e3:7.1f} ms, "
          f"kernel {best['kernel_s']*1e3:6.1f} ms "
          f"-> {best['speedup']:.1f}x")
    print(f"  n={at_small['n']}: scalar {at_small['scalar_s']*1e3:7.1f} ms, "
          f"kernel {at_small['kernel_s']*1e3:6.1f} ms "
          f"-> {at_small['speedup']:.1f}x")
    _maybe_emit({"kernel": best, "kernel_small": at_small})
    assert best["speedup"] >= 5.0, (
        f"kernel only {best['speedup']:.2f}x over the scalar "
        f"recurrence at n={best['n']}")


def bench_shared_bus_grid_speedup():
    """Acceptance gate: whole cold grid >= 3x over the PR 5 dispatch
    set (per-bank kernel only; shared-bus/global-queue cells scalar)."""
    best = None
    for _attempt in range(GATE_ATTEMPTS):
        grid = measure_shared_bus_grid()
        if best is None or grid["shared_bus_grid_speedup"] \
                > best["shared_bus_grid_speedup"]:
            best = grid
        if best["shared_bus_grid_speedup"] >= 3.0:
            break
    classes = ", ".join(f"{name} {count}" for name, count
                        in sorted(best["per_class"].items()))
    print(f"\n  cold full-SPEC grid (n={best['n']}, {best['cells']} cells)")
    print(f"  PR5 dispatch : {best['pr5_baseline_s']:.2f} s")
    print(f"  all kernels  : {best['new_s']:.2f} s "
          f"-> {best['shared_bus_grid_speedup']:.2f}x")
    print(f"  fast path    : hit rate {best['hit_rate']:.0%} ({classes})")
    _maybe_emit({"shared_bus_grid": best})
    assert best["shared_bus_grid_speedup"] >= 3.0, (
        f"whole grid only {best['shared_bus_grid_speedup']:.2f}x over "
        f"the PR 5 dispatch set")
    assert best["hit_rate"] == 1.0, (
        f"fast-path hit rate {best['hit_rate']:.2f} < 1.0 on the Fig. 9 "
        f"grid (fallbacks: {best['fallbacks']})")


def bench_cold_grid_speedup():
    """Acceptance gate: cold grid vs the PR 4 scheduling baseline
    (photonic half >= 1.5x; whole grid >= 1.05x floor, ratio reported)."""
    best = None
    for _attempt in range(GATE_ATTEMPTS):
        grid = measure_cold_grid()
        if best is None or grid["photonic_speedup"] \
                > best["photonic_speedup"]:
            best = grid
        if best["photonic_speedup"] >= 1.5 \
                and best["grid_speedup"] >= 1.05:
            break
    grid = best
    print(f"\n  cold full-SPEC grid (n={grid['n']}, {grid['cells']} cells)")
    print(f"  PR4 baseline : {grid['baseline_s']:.2f} s "
          f"(photonic half {grid['baseline_photonic_s']:.2f} s)")
    print(f"  new pipeline : {grid['new_s']:.2f} s "
          f"(photonic half {grid['new_photonic_s']:.2f} s)")
    print(f"  speedup      : {grid['grid_speedup']:.2f}x grid, "
          f"{grid['photonic_speedup']:.2f}x photonic half")
    print(f"  fast path    : {grid['fast_path_cells']}/{grid['cells']} "
          f"cells ({grid['fast_path_hit_rate']:.0%})")
    print(f"  engine cold grid wall time: {grid['engine_cold_grid_s']:.2f} s")
    _maybe_emit({"cold_grid": grid})
    assert grid["photonic_speedup"] >= 1.5, (
        f"photonic half only {grid['photonic_speedup']:.2f}x over the "
        f"PR 4 scalar recurrence")
    assert grid["grid_speedup"] >= 1.05, (
        f"full grid only {grid['grid_speedup']:.2f}x over the PR 4 "
        f"scalar recurrence")


def bench_pool_throughput():
    """Acceptance gate: thread pool >= fork pool on the warm full grid
    (bit-identity is asserted inside the measurement), 100% compiled."""
    best = None
    for _attempt in range(GATE_ATTEMPTS):
        grid = measure_pool_grid()
        if best is None or grid["threads_over_fork"] \
                > best["threads_over_fork"]:
            best = grid
        if best["threads_over_fork"] >= 1.0:
            break
    print(f"\n  warm full grid (n={best['n']}, {best['cells']} cells, "
          f"{best['workers']} workers)")
    print(f"  fork pool    : {best['fork_s']:.2f} s")
    print(f"  thread pool  : {best['threads_s']:.2f} s "
          f"-> {best['threads_over_fork']:.2f}x")
    print(f"  compiled     : {best['compiled_dispatches']}/{best['cells']} "
          f"cells ({best['compiled_hit_rate']:.0%}, "
          f"{best['twin_per_bank']} per-bank twin)")
    _maybe_emit({"pool_grid": best})
    assert best["threads_over_fork"] >= 1.0, (
        f"thread pool only {best['threads_over_fork']:.2f}x of fork-pool "
        f"throughput on the warm grid")
    assert best["compiled_hit_rate"] == 1.0, (
        f"compiled-kernel hit rate {best['compiled_hit_rate']:.2f} < 1.0 "
        f"on the warm full grid")


def main() -> None:
    json_path = None
    argv = sys.argv[1:]
    if argv[:1] == ["--json"]:
        json_path = argv[1] if len(argv) > 1 else "BENCH_kernel.json"
    kernel = measure_kernel(KERNEL_N)
    kernel_small = measure_kernel(KERNEL_N_SMALL, repeats=2)
    shared = measure_shared_bus_grid()
    grid = measure_cold_grid()
    pool = measure_pool_grid()
    print(f"fast-path scheduler kernel (COMET SPEC cells):")
    print(f"  n={kernel['n']}: {kernel['speedup']:.1f}x over the scalar "
          f"recurrence ({kernel['scalar_s']*1e3:.0f} ms -> "
          f"{kernel['kernel_s']*1e3:.0f} ms)")
    print(f"  n={kernel_small['n']}: {kernel_small['speedup']:.1f}x")
    print(f"shared-bus kernels, cold full-SPEC grid (n={shared['n']}):")
    print(f"  PR5 dispatch {shared['pr5_baseline_s']:.2f} s -> all kernels "
          f"{shared['new_s']:.2f} s "
          f"({shared['shared_bus_grid_speedup']:.2f}x; hit rate "
          f"{shared['hit_rate']:.0%})")
    print(f"cold full-SPEC grid (n={grid['n']}):")
    print(f"  PR4 baseline {grid['baseline_s']:.2f} s -> new "
          f"{grid['new_s']:.2f} s ({grid['grid_speedup']:.2f}x; photonic "
          f"half {grid['photonic_speedup']:.2f}x)")
    print(f"  fast-path hit rate {grid['fast_path_hit_rate']:.0%}, "
          f"engine wall time {grid['engine_cold_grid_s']:.2f} s")
    print(f"warm full grid, thread vs fork pool (n={pool['n']}, "
          f"{pool['cells']} cells):")
    print(f"  fork {pool['fork_s']:.2f} s -> threads {pool['threads_s']:.2f} "
          f"s ({pool['threads_over_fork']:.2f}x; compiled hit rate "
          f"{pool['compiled_hit_rate']:.0%})")
    if json_path:
        _emit_json({"kernel": kernel, "kernel_small": kernel_small,
                    "shared_bus_grid": shared, "cold_grid": grid,
                    "pool_grid": pool},
                   json_path)
        print(f"wrote {json_path}")


if __name__ == "__main__":
    main()
