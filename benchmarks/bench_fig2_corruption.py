"""Bench Fig. 2 — crossbar image corruption from write crosstalk."""

import pytest

from repro.exp.fig2 import run as run_fig2


def bench_fig2_image_corruption(benchmark):
    result = benchmark(run_fig2)

    # Section II.B arithmetic: ~8 % crystalline-fraction shift per write.
    assert result.per_write_shift == pytest.approx(0.08, abs=0.01)
    # Four adjacent writes corrupt the neighbouring rows of a 4-bit image...
    assert result.corrupted_fraction > 0.05
    assert result.corrupted_cells >= 8 * result.writes_performed
    # ...while COMET's isolated cells are untouched.
    assert result.comet_corrupted_cells == 0


def bench_fig2_scaling_with_writes(benchmark):
    """More adjacent writes -> strictly more damage (saturating)."""
    def run():
        return [run_fig2(num_adjacent_writes=n).corrupted_cells
                for n in (1, 2, 4)]

    damage = benchmark.pedantic(run, rounds=1, iterations=1)
    assert damage[0] < damage[1] < damage[2]
