"""Thermal models: lumped RC analytics and the layered CN solver."""

import numpy as np
import pytest

from repro.device.heat import (
    LayeredHeatSolver,
    LumpedThermalModel,
    ThermalLayer,
    calibrate_lumped_from_layered,
    default_cell_stack,
)
from repro.errors import SolverError


class TestLumped:
    def test_steady_state(self):
        model = LumpedThermalModel()
        rise = 1e-3 * model.thermal_resistance_k_per_w
        assert model.steady_state_k(1e-3) == pytest.approx(300.0 + rise)

    def test_step_response_monotone(self):
        model = LumpedThermalModel()
        times = np.linspace(0, 200e-9, 50)
        temps = [model.temperature_k(1e-3, t) for t in times]
        assert all(b >= a for a, b in zip(temps, temps[1:]))
        assert temps[-1] < model.steady_state_k(1e-3)

    def test_time_to_temperature_inverts_heating(self):
        model = LumpedThermalModel()
        target = 500.0
        t = model.time_to_temperature_s(5e-3, target)
        assert model.temperature_k(5e-3, t) == pytest.approx(target, rel=1e-9)

    def test_unreachable_target_raises(self):
        model = LumpedThermalModel()
        with pytest.raises(SolverError):
            model.time_to_temperature_s(1e-4, 900.0)

    def test_cooling_inverts_heating(self):
        model = LumpedThermalModel()
        t = model.time_to_cool_s(900.0, 430.0)
        assert model.cooling_temperature_k(900.0, t) == pytest.approx(430.0)

    def test_cooling_validation(self):
        model = LumpedThermalModel()
        with pytest.raises(SolverError):
            model.time_to_cool_s(900.0, 200.0)   # below ambient

    def test_quench_rate_beats_critical(self):
        """The free-cooling quench through Tl must exceed 1e9 K/s for
        amorphization to stick (Section III.B melt-quench)."""
        model = LumpedThermalModel()
        assert model.quench_rate_k_per_s(900.0) > 1e9

    def test_power_for_temperature(self):
        model = LumpedThermalModel()
        power = model.power_for_temperature_w(650.0)
        assert model.steady_state_k(power) == pytest.approx(650.0)

    def test_heat_capacity_consistent(self):
        model = LumpedThermalModel()
        assert model.heat_capacity_j_per_k == pytest.approx(
            model.time_constant_s / model.thermal_resistance_k_per_w)


class TestLayered:
    def test_step_response_heats_and_saturates(self):
        solver = LayeredHeatSolver(dz_m=20e-9)
        times, temps = solver.step_response(1e-3, duration_s=150e-9, dt_s=0.5e-9)
        assert temps[0] == pytest.approx(300.0)
        assert temps[-1] > 320.0
        # saturating: last 10 % of the rise is slower than the first 10 %
        n = len(temps)
        assert (temps[n // 10] - temps[0]) > (temps[-1] - temps[-n // 10])

    def test_cooling_after_pulse(self):
        solver = LayeredHeatSolver(dz_m=20e-9)
        times, temps = solver.simulate(
            5e-3, pulse_duration_s=50e-9, total_time_s=150e-9, dt_s=0.5e-9)
        peak_index = int(np.argmax(temps))
        assert times[peak_index] <= 60e-9
        assert temps[-1] < temps[peak_index]

    def test_energy_monotone_in_power(self):
        solver = LayeredHeatSolver(dz_m=20e-9)
        _, low = solver.step_response(1e-3, duration_s=80e-9, dt_s=0.5e-9)
        _, high = solver.step_response(2e-3, duration_s=80e-9, dt_s=0.5e-9)
        assert high[-1] > low[-1]

    def test_custom_stack_validation(self):
        with pytest.raises(SolverError):
            LayeredHeatSolver(
                layers=[ThermalLayer("ox", 1e-6, 1.4, 1.6e6)],
                heated_layer="gst",
            )

    def test_default_stack_has_four_layers(self):
        stack = default_cell_stack()
        assert [layer.name for layer in stack] == \
            ["box", "core", "gst", "cladding"]


class TestCrossValidation:
    def test_lumped_and_layered_agree_on_scales(self):
        """The two HEAT substitutes agree on thermal resistance within ~2x
        and time constant within ~4x (structural 1-pole vs distributed)."""
        solver = LayeredHeatSolver()
        fitted = calibrate_lumped_from_layered(solver, duration_s=400e-9)
        reference = LumpedThermalModel()
        r_ratio = (fitted.thermal_resistance_k_per_w
                   / reference.thermal_resistance_k_per_w)
        tau_ratio = fitted.time_constant_s / reference.time_constant_s
        assert 0.5 < r_ratio < 2.0
        assert 0.25 < tau_ratio < 4.0
