"""Thermal write-disturb bound and transmission drift/retention."""

import math

import pytest

from repro.device.drift import TEN_YEARS_S, TransmissionDriftModel
from repro.device.mlc import MultiLevelCell
from repro.device.thermal_crosstalk import (
    COMET_CELL_PITCH_M,
    COSMOS_CELL_PITCH_M,
    ThermalCrosstalkModel,
    comet_write_disturb_report,
)
from repro.errors import ConfigError


class TestThermalCrosstalk:
    def test_comet_pitch_is_disturb_free(self):
        """The conclusion's 'crosstalk-free' claim, thermally verified."""
        model = ThermalCrosstalkModel()
        assert model.is_disturb_free(5e-3, 56e-9, COMET_CELL_PITCH_M)

    def test_neighbor_rise_negligible_at_comet_pitch(self):
        model = ThermalCrosstalkModel()
        rise = model.neighbor_temperature_rise_k(5e-3, 56e-9,
                                                 COMET_CELL_PITCH_M)
        assert rise < 1e-6   # microkelvin class: diffusion cannot reach

    def test_diffusion_length_far_below_pitch(self):
        model = ThermalCrosstalkModel()
        length = model.diffusion_length_m(56e-9)
        assert length < COMET_CELL_PITCH_M / 20

    def test_cosmos_pitch_in_danger_zone(self):
        """At 2 um the steady-state rise is tens of kelvin — the crossbar
        sits where repeated writes accumulate real heating."""
        model = ThermalCrosstalkModel()
        steady = model.steady_state_rise_k(5e-3, COSMOS_CELL_PITCH_M)
        assert steady > 100.0

    def test_rise_decreases_with_distance(self):
        model = ThermalCrosstalkModel()
        rises = [model.neighbor_temperature_rise_k(5e-3, 56e-9, r)
                 for r in (0.5e-6, 1e-6, 2e-6)]
        assert rises[0] > rises[1] > rises[2]

    def test_minimum_safe_pitch_below_comet_pitch(self):
        model = ThermalCrosstalkModel()
        safe = model.minimum_safe_pitch_m(5e-3, 56e-9)
        assert safe < COMET_CELL_PITCH_M

    def test_report_keys(self):
        report = comet_write_disturb_report()
        assert report["comet_disturb_free"]
        assert report["minimum_safe_pitch_m"] < report["comet_pitch_m"]

    def test_validation(self):
        model = ThermalCrosstalkModel()
        with pytest.raises(ConfigError):
            model.neighbor_temperature_rise_k(5e-3, 56e-9, 0.0)
        with pytest.raises(ConfigError):
            model.diffusion_length_m(0.0)
        with pytest.raises(ConfigError):
            ThermalCrosstalkModel(conductivity_w_mk=0.0)


class TestDrift:
    def test_no_drift_at_time_zero(self):
        model = TransmissionDriftModel()
        assert model.transmission_shift(0.0, 0.0) == 0.0

    def test_drift_grows_logarithmically(self):
        model = TransmissionDriftModel()
        one_day = model.transmission_shift(0.0, 86400.0)
        hundred_days = model.transmission_shift(0.0, 100 * 86400.0)
        # Two decades of time -> about twice the one-day shift magnitude
        # relative to the decade count, not 100x.
        assert hundred_days < 3.0 * one_day

    def test_crystalline_cells_do_not_drift(self):
        model = TransmissionDriftModel()
        assert model.transmission_shift(1.0, 1e9) == 0.0
        assert model.level_retention_s(MultiLevelCell(4),
                                       crystalline_fraction=1.0) == math.inf

    def test_comet_4bit_meets_ten_year_retention(self):
        """The conclusion's drift-tolerance claim at 6 % spacing."""
        model = TransmissionDriftModel()
        assert model.retention_meets_spec(MultiLevelCell(4), TEN_YEARS_S)

    def test_wider_spacing_longer_retention(self):
        model = TransmissionDriftModel()
        assert model.level_retention_s(MultiLevelCell(2)) \
            > model.level_retention_s(MultiLevelCell(4)) \
            > model.level_retention_s(MultiLevelCell(5))

    def test_five_bits_is_the_risky_choice(self):
        """With a pessimistic drift coefficient, b=4 survives the 10-year
        spec while b=5 fails — one quantitative reason the paper stops at
        4 bits despite [17] demonstrating 5."""
        pessimistic = TransmissionDriftModel(nu_per_decade=0.0028)
        assert pessimistic.retention_meets_spec(MultiLevelCell(4))
        assert not pessimistic.retention_meets_spec(MultiLevelCell(5))

    def test_max_bits_for_retention(self):
        model = TransmissionDriftModel(nu_per_decade=0.0028)
        assert model.max_bits_for_retention() == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            TransmissionDriftModel(nu_per_decade=-0.1)
        model = TransmissionDriftModel()
        with pytest.raises(ConfigError):
            model.transmission_shift(1.5, 0.0)
        with pytest.raises(ConfigError):
            model.transmission_shift(0.5, -1.0)
