"""Headline claims — the abstract/conclusion numbers, measured.

The paper's headline: versus the best-known prior photonic main memory
(COSMOS), COMET offers 7.1x better bandwidth, 15.1x lower EPB and 3x
lower latency (abstract; Section IV.C quotes 5.1x / 12.9x for the
trace-averaged variants), consumes 26 % of the power, and achieves 65.8x
better BW/EPB (6.5x over the best electronic platform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .fig8 import run as run_fig8
from .fig9 import run as run_fig9


@dataclass
class HeadlineResult:
    measured: Dict[str, float]
    paper: Dict[str, float]

    def comparison_rows(self):
        rows = []
        for key, paper_value in self.paper.items():
            rows.append((key, self.measured[key], paper_value))
        return rows


#: Paper claims (abstract + Section IV).  Ranges collapse to the
#: Section IV.C trace-averaged values where both exist.
PAPER_CLAIMS = {
    "bandwidth_vs_cosmos": 5.1,
    "epb_vs_cosmos": 12.9,
    "latency_vs_cosmos": 3.0,
    "bw_per_epb_vs_cosmos": 65.8,
    "bw_per_epb_vs_3d_ddr4": 6.5,
    "power_ratio_vs_cosmos": 0.26,
}


def run(num_requests: int = 8000, store=None, server=None) -> HeadlineResult:
    """Measure the headline ratios.

    ``store`` / ``server`` thread straight through to the Fig. 9 grid
    (the only simulation here), so a warm store or daemon makes the
    headline regeneration free; the Fig. 8 power stacks are closed-form.
    """
    fig9 = run_fig9(num_requests=num_requests, store=store, server=server)
    fig8 = run_fig8()
    measured = {
        "bandwidth_vs_cosmos": fig9.bw_ratio("COSMOS"),
        "epb_vs_cosmos": fig9.epb_ratio("COSMOS"),
        "latency_vs_cosmos": fig9.latency_ratio("COSMOS"),
        "bw_per_epb_vs_cosmos": fig9.bw_per_epb_ratio("COSMOS"),
        "bw_per_epb_vs_3d_ddr4": fig9.bw_per_epb_ratio("3D_DDR4"),
        "power_ratio_vs_cosmos": fig8.power_ratio,
    }
    return HeadlineResult(measured=measured, paper=dict(PAPER_CLAIMS))


def main(num_requests: int = 8000, store=None,
         server=None) -> HeadlineResult:
    result = run(num_requests=num_requests, store=store, server=server)
    print("Headline claims (measured | paper):")
    for key, measured, paper in result.comparison_rows():
        print(f"  {key:28s}: {measured:7.2f} | {paper:.2f}")
    print()
    return result


if __name__ == "__main__":
    main()
