"""Bench the persistent result store: warm sweeps must be ~free.

The acceptance gate for the store layer: running the full SPEC grid
(7 architectures x 8 workloads) a second time against a populated store
must complete at least 10x faster than the cold run, with every cell
served from disk and results bit-identical.  That is the property that
makes large DSE sweeps and incremental figure regeneration affordable.

Runs standalone too::

    python benchmarks/bench_result_store.py [num_requests]
"""

from __future__ import annotations

import gc
import hashlib
import json
import sys
import tempfile
import time
from typing import Dict

import numpy as np

from repro.sim.engine import controller_for
from repro.sim.factory import ARCHITECTURE_NAMES
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepSpec, run_sweep

NUM_REQUESTS = 2000
MIN_WARM_SPEEDUP = 10.0


def _content_digest(result) -> str:
    """Order-stable digest of every cell's full stats, latencies included
    bit-for-bit — lets the bench verify cold == warm without keeping the
    whole cold grid alive while the warm pass is timed."""
    digest = hashlib.sha256()
    for task in result.spec.tasks():
        stats = result.results[task]
        digest.update(json.dumps(stats.to_dict(latencies=False),
                                 sort_keys=True).encode())
        digest.update(np.asarray(stats.latencies_ns, dtype="<f8").tobytes())
    return digest.hexdigest()


def compare(num_requests: int = NUM_REQUESTS) -> Dict[str, float]:
    """Cold vs warm full-SPEC-grid sweep against one (temporary) store."""
    # Device construction (COMET's mode-solver stack) is one-time work
    # shared by both passes; warm it outside the timed regions.
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)
    spec = SweepSpec(num_requests=(num_requests,))
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        store = ResultStore(root)

        start = time.perf_counter()
        cold = run_sweep(spec, store=store)
        cold_s = time.perf_counter() - start
        assert cold.computed == spec.num_cells
        cold_digest = _content_digest(cold)
        # Drop the cold grid before timing the warm pass: a warm consumer
        # doesn't hold a duplicate of every latency sample in memory.
        del cold
        gc.collect()

        start = time.perf_counter()
        warm = run_sweep(spec, store=store)
        warm_s = time.perf_counter() - start
        assert warm.store_hits == spec.num_cells, "warm run must be all hits"
        assert _content_digest(warm) == cold_digest, \
            "stored results must be bit-identical to computed ones"

    return {
        "num_requests": num_requests,
        "cells": spec.num_cells,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def bench_result_store_warm_speedup():
    """Acceptance gate: warm full-SPEC grid >= 10x faster than cold."""
    result = compare()
    print(f"\n  cold sweep ({result['cells']} cells) : "
          f"{result['cold_s']:.2f} s")
    print(f"  warm sweep (all store hits): {result['warm_s']:.3f} s")
    print(f"  speedup                    : {result['speedup']:.1f}x")
    assert result["speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm sweep only {result['speedup']:.2f}x faster than cold "
        f"(need >= {MIN_WARM_SPEEDUP}x)")


def bench_result_store_warm_grid(benchmark):
    """pytest-benchmark timing of a fully warm store-backed sweep."""
    spec = SweepSpec(num_requests=(NUM_REQUESTS,))
    with tempfile.TemporaryDirectory(prefix="repro-bench-warm-") as root:
        store = ResultStore(root)
        cold = run_sweep(spec, store=store)
        warm = benchmark.pedantic(
            run_sweep, args=(spec,), kwargs={"store": store},
            rounds=1, iterations=1)
        assert warm.computed == 0
        assert warm.results == cold.results


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else NUM_REQUESTS
    result = compare(num_requests=num_requests)
    print(f"full SPEC grid, {num_requests} requests/cell, "
          f"{result['cells']} cells:")
    print(f"  cold (compute + store) : {result['cold_s']:.2f} s")
    print(f"  warm (all store hits)  : {result['warm_s']:.3f} s")
    print(f"  speedup: {result['speedup']:.1f}x")


if __name__ == "__main__":
    main()
