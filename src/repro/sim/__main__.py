"""Command-line simulator runner.

Run a synthetic workload::

    python -m repro.sim --arch COMET --workload mcf --requests 20000

a multi-programmed or phased workload::

    python -m repro.sim --arch COMET --workload mix_mcf_lbm
    python -m repro.sim --arch 3D_DDR4 --workload checkpoint

an NVMain trace file::

    python -m repro.sim --arch 2D_DDR3 --trace path/to/trace.nvt

or the full evaluation grid through the parallel engine::

    python -m repro.sim --arch ALL --grid --workers 4
    python -m repro.sim --arch ALL --grid --workers 4 --pool threads
    python -m repro.sim --arch ALL --grid --workloads mcf,bursty,checkpoint

with a persistent result store (incremental + resumable) and export::

    python -m repro.sim --arch ALL --grid --store results/ --resume
    python -m repro.sim --arch ALL --grid --store results/ --resume \
        --export csv --export-path fig9.csv

with per-phase timing (trace fetch / simulate / store I/O, fast-path
scheduler-kernel hit rate, trace-plane segments)::

    python -m repro.sim --arch ALL --grid --profile

run / query the async evaluation daemon::

    python -m repro.sim serve --port 8787 --store results/ --workers 4
    python -m repro.sim query --arch COMET --workload mcf --requests 8000
    python -m repro.sim query --stats

or drive a fleet of daemons and fold their stores back together::

    python -m repro.sim fabric --hosts http://a:8787,http://b:8787 \
        --arch ALL --store results/
    python -m repro.sim fabric stats --hosts http://a:8787,http://b:8787
    python -m repro.sim merge-stores --into results/ store-a/ store-b/

including as a long-running coordinator over an *elastic* fleet —
membership comes from a watched host file and/or a join endpoint, and
hosts that die, recover or join mid-run are handled by the
health-checked membership state machine::

    python -m repro.sim fabric --watch-hosts fleet.txt \
        --serve-membership :9090 --arch ALL --store results/
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from ..errors import SimulationError
from .engine import POOL_MODES, _resolve_workers
from .factory import ARCHITECTURE_NAMES, known_architectures
from .simulator import MainMemorySimulator, summarize
from .stats import SimStats
from .trace import TraceReader
from .tracegen import ALL_WORKLOAD_NAMES, SPEC_WORKLOADS, WORKLOAD_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sim",
        description="Trace-driven main-memory simulation (NVMain substitute)",
    )
    parser.add_argument("--arch", required=True,
                        choices=known_architectures() + ("ALL",),
                        help="architecture to simulate — a Fig. 9 label "
                             "or ablation variant (ALL with --grid runs "
                             "the Fig. 9 seven)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=ALL_WORKLOAD_NAMES,
                        help="synthetic workload (SPEC preset, mix_*, "
                             "bursty, checkpoint, dota-* accelerator "
                             "traffic)")
    source.add_argument("--trace", help="NVMain trace file")
    source.add_argument("--grid", action="store_true",
                        help="run the full evaluation grid through the "
                             "parallel engine")
    parser.add_argument("--workloads", default=None,
                        help="grid workload set: 'spec' (default), 'all', "
                             "or a comma-separated list of workload names")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool workers for --grid (default: "
                             "serial, or $REPRO_EVAL_WORKERS; 0 = one "
                             "per CPU)")
    parser.add_argument("--pool", choices=("auto",) + POOL_MODES,
                        default=None,
                        help="execution pool for --grid: 'threads' "
                             "(in-process, GIL released by the compiled "
                             "kernel twin), 'fork' (process pool + "
                             "shared-memory trace plane), 'serial', or "
                             "'auto' (threads when the twin compiles; "
                             "default, or $REPRO_POOL)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persistent result store for --grid: every "
                             "cell is checkpointed as it completes")
    parser.add_argument("--resume", action="store_true",
                        help="with --grid --store: serve cells already "
                             "in the store instead of recomputing them")
    parser.add_argument("--export", choices=("csv", "json"), default=None,
                        help="with --grid: export per-cell rows")
    parser.add_argument("--export-path", default="-", metavar="PATH",
                        help="export destination ('-' = stdout)")
    parser.add_argument("--profile", action="store_true",
                        help="with --grid: print per-phase wall times "
                             "(trace fetch, simulate, store I/O), "
                             "per-pool run timings, the scheduler-kernel "
                             "hit rate and trace-plane usage after the "
                             "run")
    parser.add_argument("--requests", type=int, default=20_000,
                        help="request count for synthetic workloads")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cpu-ghz", type=float, default=2.0,
                        help="CPU frequency for trace cycle conversion")
    return parser


def _grid_workloads(spec: str) -> list:
    if spec == "spec":
        return sorted(SPEC_WORKLOADS)
    if spec == "all":
        return list(WORKLOAD_NAMES)
    return [name.strip() for name in spec.split(",") if name.strip()]


def _print_stats(stats: SimStats) -> None:
    latency = stats.latency_row()   # NaN columns when nothing completed
    print(f"architecture : {stats.device_name}")
    print(f"workload     : {stats.workload_name}")
    print(f"requests     : {stats.num_requests} "
          f"({stats.num_reads} R / {stats.num_writes} W)")
    print(f"bandwidth    : {stats.bandwidth_gbps:.2f} GB/s")
    print(f"avg latency  : {latency['avg_latency_ns']:.1f} ns "
          f"(p95 {latency['p95_latency_ns']:.1f} ns)")
    print(f"EPB          : {stats.energy_per_bit_pj:.1f} pJ/bit")
    print(f"BW/EPB       : {stats.bw_per_epb:.4f}")
    if stats.row_hits or stats.row_misses:
        print(f"row hit rate : {stats.row_hit_rate:.1%}")


def _print_profile(table, workers) -> None:
    """The ``--profile`` report: per-phase seconds + kernel hit rate."""
    from . import controller, engine
    from .stats import kernel_dispatch_summary
    from .tracegen import trace_plane_stats

    phases = engine.profile_snapshot()
    pools = engine.pool_profile_snapshot()
    kernel = kernel_dispatch_summary(controller.kernel_counters())
    plane = trace_plane_stats()
    classes = "/".join(
        f"{name} {kernel['per_class'].get(name, 0)}"
        for name in controller.KERNEL_CLASSES)
    fallbacks = kernel["fallbacks"]
    print("profile:", file=table)
    print(f"  trace fetch  : {phases['trace_s']:8.3f} s", file=table)
    print(f"  simulate     : {phases['simulate_s']:8.3f} s", file=table)
    print(f"  store I/O    : {phases['store_s']:8.3f} s", file=table)
    for mode, usage in sorted(pools.items()):
        print(f"  pool {mode:8s}: {usage['wall_s']:8.3f} s "
              f"({usage['runs']} runs, {usage['cells']} cells)", file=table)
    print(f"  kernel       : {kernel['fast']}/{kernel['scheduled']} cells "
          f"on the fast path ({classes}; fallbacks: "
          f"{fallbacks['device']} device, {fallbacks['toolchain']} "
          f"toolchain, {fallbacks['admission_reverts']} admission "
          f"reverts)", file=table)
    print(f"  trace plane  : {plane['owned_segments']} segments published "
          f"({plane['owned_bytes'] / 1024:.0f} KiB), "
          f"{plane['attached_segments']} attached", file=table)
    if workers != 1:
        print("  note: fork workers time their own compute phases; "
              "per-cell simulate/store deltas are merged back above",
              file=table)


def _run_grid(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    from . import controller, engine
    from .store import ResultStore, _current_umask
    from .sweep import SweepSpec, run_sweep, write_csv, write_json

    architectures = ARCHITECTURE_NAMES if args.arch == "ALL" \
        else (args.arch,)
    workload_names = _grid_workloads(args.workloads or "spec")
    if not workload_names:
        parser.error("--workloads resolved to an empty set")
    export_stream = None
    if args.export and args.export_path != "-":
        # Probe writability before the sweep runs (an unwritable path
        # must not discard hours of computed cells), but stage into a
        # sibling temp file so a failed or interrupted sweep never
        # truncates an existing export.
        if os.path.isdir(args.export_path):
            parser.error(
                f"--export-path {args.export_path!r} is a directory")
        try:
            export_stream = tempfile.NamedTemporaryFile(
                "w", dir=os.path.dirname(args.export_path) or ".",
                prefix=f".{os.path.basename(args.export_path)}.",
                newline="", delete=False)
        except OSError as error:
            parser.error(
                f"cannot write --export-path {args.export_path!r}: {error}")
    # Exporting to stdout reserves it for machine-readable rows; the
    # human-readable table moves to stderr so piped output stays clean.
    table = sys.stderr if (args.export and export_stream is None) \
        else sys.stdout
    try:
        try:
            # Surface argument-shaped problems (bad worker count, bad
            # $REPRO_EVAL_WORKERS) as usage errors before any cell runs.
            # The resolved count also drives --profile's fan-out note
            # (with workers > 1 the compute phases run in the pool).
            resolved_workers = _resolve_workers(args.workers)
            store = ResultStore(args.store) if args.store else None
            spec = SweepSpec(
                architectures=tuple(architectures),
                workloads=tuple(workload_names),
                num_requests=(args.requests,),
                seeds=(args.seed,),
            )
        except SimulationError as error:
            parser.error(str(error))
        except OSError as error:
            # Unusable --store path (file in the way, permissions, full
            # disk).
            parser.error(f"result store {args.store!r} unusable: {error}")
        if args.profile:
            engine.reset_profile()
            controller.reset_kernel_counters()
        try:
            sweep = run_sweep(spec, store=store, workers=args.workers,
                              resume=args.resume, pool=args.pool)
        except (SimulationError, OSError) as error:
            # A runtime failure (cell error, disk full mid-checkpoint),
            # not a bad argument: report it plainly and point at the
            # checkpointed cells.
            message = f"error: {error}"
            if args.store:
                message += (f"\ncompleted cells are checkpointed in "
                            f"{args.store}; rerun with --resume to continue")
            print(message, file=sys.stderr)
            return 1
        results = {arch: {} for arch in architectures}
        for task, stats in sweep.results.items():
            results[task.architecture][task.workload] = stats
        summary = summarize(results)
        header = (f"{'arch':10s} {'BW (GB/s)':>10s} {'latency (ns)':>13s} "
                  f"{'EPB (pJ/b)':>11s} {'BW/EPB':>9s}")
        print(f"grid         : {len(architectures)} architectures x "
              f"{len(workload_names)} workloads "
              f"({', '.join(workload_names)})", file=table)
        if store is not None:
            print(f"store        : {args.store} ({sweep.store_hits} cached, "
                  f"{sweep.computed} computed)", file=table)
        print(header, file=table)
        print("-" * len(header), file=table)
        for arch in architectures:
            row = summary[arch]
            print(f"{arch:10s} {row['bandwidth_gbps']:10.2f} "
                  f"{row['avg_latency_ns']:13.1f} {row['epb_pj']:11.1f} "
                  f"{row['bw_per_epb']:9.4f}", file=table)
        if args.profile:
            _print_profile(table, resolved_workers)
        if args.export:
            writer = write_csv if args.export == "csv" else write_json
            if export_stream is None:
                writer(sweep.rows(), sys.stdout)
            else:
                with export_stream:
                    writer(sweep.rows(), export_stream)
                try:
                    # Temp files are created 0600; give the finalized
                    # export normal umask-derived permissions.
                    os.chmod(export_stream.name, 0o666 & ~_current_umask())
                    os.replace(export_stream.name, args.export_path)
                except OSError as error:
                    # Don't discard the computed rows: the staged temp
                    # file survives (skip the cleanup unlink below).
                    print(f"error: cannot finalize --export-path "
                          f"{args.export_path!r}: {error}\n"
                          f"export rows saved in {export_stream.name}",
                          file=sys.stderr)
                    export_stream = None
                    return 1
                export_stream = None
        return 0
    finally:
        if export_stream is not None:    # failed before a complete export
            export_stream.close()
            try:
                os.unlink(export_stream.name)
            except OSError:
                pass


def gc_main(argv=None) -> int:
    """``python -m repro.sim gc --store DIR`` — prune a result store.

    Removes stale entries (old ``RESULTS_VERSION`` / fingerprint
    mismatches), orphaned latency sidecars and abandoned staging temp
    files; ``--compact`` additionally drops shard directories the pass
    left empty.  Live cells are untouched.
    """
    from .store import ResultStore

    parser = argparse.ArgumentParser(
        prog="repro.sim gc",
        description="Garbage-collect a result store: prune entries no "
                    "current model addresses, orphaned sidecars and torn "
                    "temp files.",
    )
    parser.add_argument("--store", required=True, metavar="DIR",
                        help="result-store directory to prune")
    parser.add_argument("--compact", action="store_true",
                        help="also remove shard directories left empty")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be removed, delete nothing")
    parser.add_argument("--verbose", action="store_true",
                        help="list every removed path")
    args = parser.parse_args(argv)
    try:
        store = ResultStore(args.store)
    except (OSError, SimulationError) as error:
        print(f"error: result store {args.store!r} unusable: {error}",
              file=sys.stderr)
        return 2
    try:
        report = (store.compact(dry_run=args.dry_run) if args.compact
                  else store.gc(dry_run=args.dry_run))
    except OSError as error:
        print(f"error: gc failed: {error}", file=sys.stderr)
        return 1
    print(f"{args.store}: {report.describe()}")
    if args.verbose:
        for label, paths in (("stale", report.removed_stale),
                             ("sidecar", report.removed_sidecars),
                             ("temp", report.removed_temp_files),
                             ("dir", report.removed_dirs)):
            for path in paths:
                print(f"  {label:8s} {path}")
    return 0


def merge_main(argv=None) -> int:
    """``python -m repro.sim merge-stores --into DIR SRC [SRC...]`` —
    fold remote daemons' result stores back into one, audited.

    Conflicts (the same digest holding different task/stats payloads —
    divergent simulator builds) are never copied and make the command
    exit non-zero.
    """
    from .store import ResultStore

    parser = argparse.ArgumentParser(
        prog="repro.sim merge-stores",
        description="Merge result stores (the write-back half of a "
                    "fabric run): copy entries absent from the "
                    "destination, upgrade archival entries with latency "
                    "sidecars, replace torn entries, and refuse "
                    "digest-collision conflicts.",
    )
    parser.add_argument("--into", required=True, metavar="DIR",
                        help="destination store (created if missing)")
    parser.add_argument("sources", nargs="+", metavar="SRC",
                        help="source store directories")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be copied, write nothing")
    parser.add_argument("--verbose", action="store_true",
                        help="list every copied path and conflict digest")
    args = parser.parse_args(argv)
    try:
        dest = ResultStore(args.into)
    except (OSError, SimulationError) as error:
        print(f"error: destination store {args.into!r} unusable: {error}",
              file=sys.stderr)
        return 2
    conflicts = 0
    for source in args.sources:
        try:
            report = dest.merge_from(source, dry_run=args.dry_run)
        except (OSError, SimulationError) as error:
            print(f"error: source store {source!r} unusable: {error}",
                  file=sys.stderr)
            return 2
        print(f"{source} -> {args.into}: {report.describe()}")
        if args.verbose:
            for label, paths in (("new", report.merged),
                                 ("upgrade", report.upgraded),
                                 ("replace", report.replaced_torn),
                                 ("skip", report.skipped_unreadable)):
                for path in paths:
                    print(f"  {label:8s} {path}")
            for digest in report.conflicts:
                print(f"  CONFLICT {digest}")
        conflicts += len(report.conflicts)
    if conflicts:
        print(f"error: {conflicts} conflicting digests left uncopied — "
              f"the stores were written by divergent simulator builds",
              file=sys.stderr)
        return 1
    return 0


#: Subcommands dispatched before the legacy flag-style parser; the
#: flag interface (``--arch ... --workload ...``) stays unchanged.
SUBCOMMANDS = ("serve", "query", "gc", "fabric", "merge-stores")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        if argv[0] == "serve":
            from .server import serve_main
            return serve_main(argv[1:])
        if argv[0] == "gc":
            return gc_main(argv[1:])
        if argv[0] == "fabric":
            from .fabric import fabric_main
            return fabric_main(argv[1:])
        if argv[0] == "merge-stores":
            return merge_main(argv[1:])
        from .client import query_main
        return query_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.export_path != "-" and args.export is None:
        parser.error("--export-path requires --export")
    if args.grid:
        try:
            return _run_grid(args, parser)
        except KeyboardInterrupt:
            # Completed cells are already checkpointed; surface the
            # resume path instead of a raw traceback.
            message = "\ninterrupted"
            if args.store:
                message += (f" — completed cells are checkpointed in "
                            f"{args.store}; rerun with --resume to continue")
            print(message, file=sys.stderr)
            return 130
    if args.arch == "ALL":
        parser.error("--arch ALL requires --grid")
    if args.workers is not None or args.workloads is not None \
            or args.pool is not None:
        parser.error("--workers/--workloads/--pool only apply with --grid")
    if args.profile:
        parser.error("--profile only applies with --grid")
    if args.store is not None or args.export is not None:
        parser.error("--store/--resume/--export only apply with --grid")
    simulator = MainMemorySimulator(args.arch)
    if args.workload:
        stats = simulator.run_workload(args.workload, args.requests, args.seed)
    else:
        requests = TraceReader(args.trace, cpu_freq_ghz=args.cpu_ghz).read_all()
        stats = simulator.run(requests, workload_name=args.trace)
    _print_stats(stats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
