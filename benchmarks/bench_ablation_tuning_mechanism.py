"""Ablation — electro-optic versus thermal microring tuning.

Section II.B's core circuit-level decision: thermal tuning is us-scale and
would "severely increase the latency and reduce achievable bandwidth";
COMET pays 0.31 dB extra through loss for ns-scale EO tuning.  This bench
swaps the access mechanism (the registered ``COMET-thermal`` variant
architecture) and measures what the paper only argues; a
``$REPRO_RESULT_STORE`` makes re-runs incremental.
"""

from repro.photonics.ring import RingTuningModel, TuningMechanism
from repro.sim.engine import EvalTask, evaluate_tasks


def bench_ablation_eo_vs_thermal_tuning(benchmark, eval_store):
    eo = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
    thermal = RingTuningModel.from_parameters(TuningMechanism.THERMAL)

    def run():
        tasks = [EvalTask("COMET", "milc", 4000, 1),
                 EvalTask("COMET-thermal", "milc", 4000, 1)]
        lookup = evaluate_tasks(tasks, store=eval_store)
        return lookup[tasks[0]], lookup[tasks[1]]

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  EO tuning:      {fast.bandwidth_gbps:7.2f} GB/s, "
          f"{fast.avg_latency_ns:8.1f} ns")
    print(f"  thermal tuning: {slow.bandwidth_gbps:7.2f} GB/s, "
          f"{slow.avg_latency_ns:8.1f} ns")

    # The paper's argument, quantified: thermal tuning cripples both
    # bandwidth and latency by an order of magnitude or more.
    assert fast.bandwidth_gbps > 10 * slow.bandwidth_gbps
    assert slow.avg_latency_ns > 5 * fast.avg_latency_ns
    # The price of EO tuning is only ~0.3 dB per traversal.
    assert eo.through_loss_db - thermal.through_loss_db < 0.35
