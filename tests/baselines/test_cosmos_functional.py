"""Functional COSMOS crossbar: live crosstalk on real stored data."""

import numpy as np
import pytest

from repro.baselines.cosmos_functional import FunctionalCosmosMemory
from repro.errors import AddressError, ConfigError


def row_pattern(seed: int, cols: int = 32, levels: int = 4) -> np.ndarray:
    return np.random.RandomState(seed).randint(0, levels, cols)


class TestBasicOperation:
    def test_write_read_roundtrip_single_row(self):
        memory = FunctionalCosmosMemory()
        data = row_pattern(1)
        memory.write_row(10, data)
        assert np.array_equal(memory.read_row(10), data)

    def test_two_bits_per_cell(self):
        memory = FunctionalCosmosMemory()
        assert memory.bits_per_cell == 2
        assert memory.num_levels == 4

    def test_subtractive_read_erases_without_writeback(self):
        memory = FunctionalCosmosMemory(write_back_on_read=False)
        memory.write_row(5, row_pattern(2))
        memory.read_row(5)
        with pytest.raises(AddressError):
            memory.read_row(5)

    def test_writeback_restores(self):
        memory = FunctionalCosmosMemory(write_back_on_read=True)
        data = row_pattern(3)
        memory.write_row(5, data)
        first = memory.read_row(5)
        second = memory.read_row(5)
        assert np.array_equal(first, second)

    def test_validation(self):
        memory = FunctionalCosmosMemory()
        with pytest.raises(AddressError):
            memory.write_row(99, row_pattern(1))
        with pytest.raises(ConfigError):
            memory.write_row(0, np.zeros(7, dtype=int))
        with pytest.raises(ConfigError):
            memory.write_row(0, np.full(32, 9))
        with pytest.raises(ConfigError):
            FunctionalCosmosMemory(rows=1)


class TestCrosstalkCorruption:
    def test_adjacent_write_disturbs_stored_row(self):
        """The Fig. 1(b)/Fig. 2 mechanism on live data: writes to row 11
        drift row 10's cells upward until levels flip."""
        memory = FunctionalCosmosMemory()
        victim = np.zeros(32, dtype=int)   # most disturb-sensitive level
        memory.write_row(10, victim)
        reference = {10: victim}
        for _ in range(4):                 # the paper's four writes
            memory.write_row(11, row_pattern(4))
        corrupted, fraction = memory.corruption_report(reference)
        assert corrupted > 0
        assert fraction > 0.5

    def test_distant_rows_unaffected(self):
        memory = FunctionalCosmosMemory()
        victim = np.zeros(32, dtype=int)
        memory.write_row(2, victim)
        memory.write_row(20, row_pattern(5))
        corrupted, _ = memory.corruption_report({2: victim})
        assert corrupted == 0

    def test_even_reads_disturb_neighbours(self):
        """With write-back, the subtractive read's restore write hits the
        neighbours too — COSMOS reads are not free of disturbance."""
        memory = FunctionalCosmosMemory(write_back_on_read=True)
        victim = np.zeros(32, dtype=int)
        memory.write_row(10, victim)
        memory.write_row(11, row_pattern(6))
        events_before = memory.stats.crosstalk_events
        memory.read_row(11)                # restore write -> more crosstalk
        assert memory.stats.crosstalk_events > events_before

    def test_crosstalk_event_accounting(self):
        memory = FunctionalCosmosMemory()
        events = memory.write_row(10, row_pattern(7))
        assert events == 2 * memory.cols   # both neighbour rows hit
        edge_events = memory.write_row(0, row_pattern(8))
        assert edge_events == memory.cols  # only one neighbour exists


class TestComparisonWithComet:
    def test_same_pattern_comet_survives_cosmos_corrupts(self):
        """The executable Fig. 2 A/B: identical stored data and write
        traffic; COMET's isolated cells survive, the crossbar's do not."""
        from repro.arch.functional import FunctionalCometMemory

        comet = FunctionalCometMemory()
        cosmos = FunctionalCosmosMemory()

        payload = bytes(128)               # brightest levels: sensitive
        comet.write_line(0, payload)
        victim = np.zeros(32, dtype=int)
        cosmos.write_row(10, victim)

        # Aggressor traffic: writes near the victims.
        for index in range(4):
            comet.write_line((index + 1) * comet.org.banks * 128,
                             bytes([0x55] * 128))
            cosmos.write_row(11, row_pattern(index + 10))

        assert comet.read_line(0) == payload               # intact
        corrupted, _ = cosmos.corruption_report({10: victim})
        assert corrupted > 16                              # corrupted
