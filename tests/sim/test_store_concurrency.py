"""ResultStore under concurrent writers and readers.

The store's concurrency contract (see the class docstring): atomic
renames mean a reader observes either no entry or a complete one, and
concurrent ``put`` of the same digest is benign because both writers
rename identical bytes.  The process classes drive real separate
processes at the same store directory — the scenario a sharded fork
sweep or several evaluation daemons sharing one store produce; the
thread class stampedes from inside one process, the thread-pool
engine's shape.
"""

import multiprocessing
import threading

import pytest

from repro.sim.engine import EvalTask, evaluate_cell
from repro.sim.store import ResultStore

TASK = EvalTask("EPCM-MM", "gcc", 300, 7)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork (children must inherit the computed stats cheaply)",
)


def _fork():
    return multiprocessing.get_context("fork")


def _hammer_put(root, barrier, task, stats, rounds):
    """Child body: wait at the barrier, then re-put the same digest."""
    store = ResultStore(root)
    barrier.wait(timeout=60)
    for _ in range(rounds):
        store.put(task, stats)


@needs_fork
class TestConcurrentSameDigestPuts:
    def test_simultaneous_puts_leave_one_complete_entry(self, tmp_path):
        """Four processes put the same digest at once: atomic rename
        wins, no torn JSON or sidecar, and the surviving entry is the
        stats bit-for-bit."""
        stats = evaluate_cell(TASK)
        root = tmp_path / "store"
        ResultStore(root)    # create meta before the stampede
        context = _fork()
        barrier = context.Barrier(4)
        children = [
            context.Process(target=_hammer_put,
                            args=(root, barrier, TASK, stats, 25))
            for _ in range(4)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=120)
        assert all(child.exitcode == 0 for child in children)

        store = ResultStore(root)
        assert store.get(TASK) == stats
        # Exactly one entry + one sidecar — no stray temp files left by
        # the staged writes.
        files = sorted(p.name for p in store.cells_dir.glob("*/*"))
        assert len([f for f in files if f.endswith(".json")]) == 1
        assert len([f for f in files if f.endswith(".lat")]) == 1
        assert not [f for f in files if f.startswith(".")]

    def test_reader_sees_nothing_or_a_complete_entry(self, tmp_path):
        """While a child re-puts the entry in a tight loop, every parent
        read returns either a miss or the complete stats — never a torn
        intermediate."""
        stats = evaluate_cell(TASK)
        root = tmp_path / "store"
        ResultStore(root)
        context = _fork()
        barrier = context.Barrier(2)
        child = context.Process(target=_hammer_put,
                                args=(root, barrier, TASK, stats, 200))
        child.start()
        store = ResultStore(root)
        barrier.wait(timeout=60)
        observations = []
        while child.is_alive():
            observations.append(store.get(TASK))
        child.join(timeout=120)
        assert child.exitcode == 0
        observations.append(store.get(TASK))
        assert observations[-1] == stats
        for seen in observations:
            assert seen is None or seen == stats

    def test_distinct_digests_race_the_shard_directories(self, tmp_path):
        """Concurrent puts of *different* cells race the per-prefix
        shard mkdirs; every cell must come back readable."""
        tasks = [EvalTask("EPCM-MM", "gcc", 300, seed)
                 for seed in range(1, 5)]
        all_stats = {task: evaluate_cell(task) for task in tasks}
        root = tmp_path / "store"
        ResultStore(root)
        context = _fork()
        barrier = context.Barrier(len(tasks))
        children = [
            context.Process(target=_hammer_put,
                            args=(root, barrier, task, all_stats[task], 5))
            for task in tasks
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=120)
        assert all(child.exitcode == 0 for child in children)
        store = ResultStore(root)
        for task in tasks:
            assert store.get(task) == all_stats[task]
        assert len(store) == len(tasks)


class TestThreadedSameDigestPuts:
    """The thread-pool engine writes the store from pool threads; the
    same atomic-rename contract must hold inside one process."""

    def test_thread_stampede_leaves_one_complete_entry(self, tmp_path):
        stats = evaluate_cell(TASK)
        root = tmp_path / "store"
        store = ResultStore(root)
        barrier = threading.Barrier(8)
        errors = []

        def hammer():
            try:
                barrier.wait(timeout=60)
                for _ in range(25):
                    store.put(TASK, stats)
            except BaseException as error:    # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert store.get(TASK) == stats
        files = sorted(p.name for p in store.cells_dir.glob("*/*"))
        assert len([f for f in files if f.endswith(".json")]) == 1
        assert len([f for f in files if f.endswith(".lat")]) == 1
        assert not [f for f in files if f.startswith(".")]

    def test_threaded_readers_race_a_writer(self, tmp_path):
        stats = evaluate_cell(TASK)
        store = ResultStore(tmp_path / "store")
        done = threading.Event()
        torn = []

        def read_loop():
            while not done.is_set():
                seen = store.get(TASK)
                if seen is not None and seen != stats:
                    torn.append(seen)

        reader = threading.Thread(target=read_loop)
        reader.start()
        for _ in range(100):
            store.put(TASK, stats)
        done.set()
        reader.join(timeout=120)
        assert not torn
        assert store.get(TASK) == stats


class TestGetMany:
    def test_get_many_mixes_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        missing = EvalTask("EPCM-MM", "gcc", 300, 8)
        resolved = store.get_many([TASK, missing])
        assert resolved == {TASK: stats, missing: None}

    def test_get_many_resolves_duplicates_once(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        store.put(TASK, evaluate_cell(TASK))
        reads = {"n": 0}
        real_get = ResultStore.get

        def counting_get(self, task):
            reads["n"] += 1
            return real_get(self, task)
        monkeypatch.setattr(ResultStore, "get", counting_get)
        resolved = store.get_many([TASK, TASK, TASK])
        assert reads["n"] == 1
        assert resolved[TASK] is not None

    def test_unreadable_entry_is_a_get_many_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(TASK, evaluate_cell(TASK))
        store.path_for(TASK).write_text("{torn")
        assert store.get_many([TASK]) == {TASK: None}


class TestUnreadableEdgeCases:
    def test_entry_deleted_mid_scan_is_skipped(self, tmp_path):
        """entries() tolerates files vanishing under it (concurrent GC
        semantics): unreadable cells are skipped, not raised."""
        store = ResultStore(tmp_path / "store")
        store.put(TASK, evaluate_cell(TASK))
        other = EvalTask("EPCM-MM", "mcf", 300, 7)
        store.put(other, evaluate_cell(other))
        # Sidecar gone but entry present: that cell is skipped.
        store.path_for(TASK).with_suffix(".lat").unlink()
        listed = list(store.entries())
        assert [task for task, _ in listed] == [other]

    def test_get_survives_entry_replaced_by_directory(self, tmp_path):
        """Even a pathological filesystem state (entry path is a
        directory) reads as a miss, not an exception — the OSError
        hardening for shared stores."""
        store = ResultStore(tmp_path / "store")
        store.put(TASK, evaluate_cell(TASK))
        path = store.path_for(TASK)
        path.unlink()
        path.mkdir()
        assert store.get(TASK) is None
