"""Loss-aware reliability rules: SOA placement and signal reach.

Section III.E fixes the in-array amplification plan from two numbers: the
intra-subarray SOA gain (15.2 dB, [29]) and the EO-tuned MR through loss
(0.33 dB, Table I).  A readout can cross ``floor(15.2 / 0.33) = 46`` rows
between SOA stages, so COMET places one SOA array every 46 rows and needs
``B * Nr * Nc / 46`` SOAs in total, of which only the accessed subarray's
``B * Mr * Mc / 46`` are powered at any instant.

Section IV.A adds the bit-density-dependent reach rule used for LUT
sizing: at loss tolerance ``tol(b)`` a signal may pass
``floor(tol(b) / 0.33)`` rows beyond its source before its level aliases.
"""

from __future__ import annotations

import math

from ..config import OpticalParameters, TABLE_I
from ..device.mlc import paper_loss_tolerance_db
from ..errors import ConfigError
from .organization import MemoryOrganization


def soa_row_interval(params: OpticalParameters = TABLE_I) -> int:
    """Rows between intra-subarray SOA stages: floor(gain / through-loss)."""
    interval = int(params.intra_soa_gain_db // params.eo_mr_through_loss_db)
    if interval < 1:
        raise ConfigError("SOA gain below one row's through loss")
    return interval


def rows_passable(bits_per_cell: int, params: OpticalParameters = TABLE_I) -> int:
    """Rows a readout survives past its source before aliasing (Sec. IV.A)."""
    tolerance = paper_loss_tolerance_db(bits_per_cell)
    return int(tolerance // params.eo_mr_through_loss_db)


def lut_granularity_rows(bits_per_cell: int,
                         params: OpticalParameters = TABLE_I) -> int:
    """Row granularity of gain tuning: passable rows + the source row.

    Reproduces the paper's Section IV.A granularities: 10 rows at b=1
    (3.01 dB tolerance), 4 rows at b=2 (1.2 dB), 1 row at b=4 (0.26 dB).
    """
    return rows_passable(bits_per_cell, params) + 1


def total_soa_count(org: MemoryOrganization,
                    params: OpticalParameters = TABLE_I) -> int:
    """Total intra-subarray SOAs: B * Nr * Nc / interval (Section III.E)."""
    interval = soa_row_interval(params)
    return math.ceil(org.banks * org.rows_per_bank * org.cols_per_bank / interval)


def active_soa_count(org: MemoryOrganization,
                     params: OpticalParameters = TABLE_I) -> int:
    """Powered SOAs during an access: B * Mr * Mc / interval."""
    interval = soa_row_interval(params)
    return math.ceil(org.banks * org.rows_per_subarray * org.cols_per_subarray
                     / interval)


def worst_row_path_loss_db(org: MemoryOrganization,
                           params: OpticalParameters = TABLE_I) -> float:
    """Worst un-amplified loss a readout sees between SOA stages."""
    interval = soa_row_interval(params)
    rows = min(interval, org.rows_per_subarray)
    return rows * params.eo_mr_through_loss_db


def max_gain_error_db(bits_per_cell: int,
                      params: OpticalParameters = TABLE_I) -> float:
    """Worst residual loss after quantized gain tuning.

    The LUT quantizes gain at ``lut_granularity_rows`` granularity, so the
    residual is at most ``(granularity - 1) * through_loss`` — by
    construction no more than the level tolerance.
    """
    granularity = lut_granularity_rows(bits_per_cell, params)
    return (granularity - 1) * params.eo_mr_through_loss_db
