"""COMET power model (Section III.E, Figs. 7 and 8).

Operational power has three stacked components:

* **Laser** — the off-chip source must deliver the programming/readout
  power per wavelength at each bank's input; the path from laser to bank
  (coupling, modulator drop, routing, PCM subarray switch, comb-bus
  through-traffic up to the first in-array SOA stage) sets the launch
  power, and the 20 % wall-plug efficiency converts to electrical watts.
  In-array distribution losses beyond the bank input are the intra-
  subarray SOA mesh's job and are accounted under the SOA component.
* **SOA** — only the accessed subarray's SOAs are powered:
  ``B * Mr * Mc / 46`` devices at 1.4 mW (Section III.E, verbatim).
* **EO tuning** — ``B * 2 * Mc`` rings held in resonance at ``P_EO``.

The same class computes all three Fig. 7 bit densities; Fig. 8 adds the
COSMOS model from :mod:`repro.baselines.cosmos`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from ..photonics.laser import LaserSource
from ..photonics.losses import LossBudget
from .organization import MemoryOrganization
from .reliability import active_soa_count, total_soa_count


@dataclass(frozen=True)
class PowerBreakdown:
    """One architecture's operational power stack, in watts."""

    name: str
    laser_w: float
    soa_w: float
    tuning_w: float
    interface_w: float = 0.0

    @property
    def total_w(self) -> float:
        return self.laser_w + self.soa_w + self.tuning_w + self.interface_w

    def as_dict(self) -> Dict[str, float]:
        return {
            "laser": self.laser_w,
            "soa": self.soa_w,
            "tuning": self.tuning_w,
            "interface": self.interface_w,
            "total": self.total_w,
        }


@dataclass(frozen=True)
class CometPowerModel:
    """Computes the COMET power stack for any organization.

    ``bank_input_power_w`` is the per-wavelength power that must survive to
    the bank input — 1 mW for crystalline-reset programming, 5 mW for
    amorphous-reset programming (Section III.C).
    """

    organization: MemoryOrganization
    params: OpticalParameters = TABLE_I
    bank_input_power_w: float = 1e-3
    link_length_cm: float = 2.0
    link_bends: int = 4

    def __post_init__(self) -> None:
        if self.bank_input_power_w <= 0.0:
            raise ConfigError("bank input power must be positive")

    # ------------------------------------------------------------------
    # Laser
    # ------------------------------------------------------------------

    def laser_path_budget(self) -> LossBudget:
        """Loss budget from laser to bank input for one wavelength."""
        p = self.params
        budget = LossBudget("laser-to-bank")
        budget.add("coupling", p.coupling_loss_db)
        budget.add("modulator MR drop", p.mr_drop_loss_db)
        budget.add("propagation", p.propagation_loss_db_per_cm,
                   self.link_length_cm)
        budget.add("bending", p.bending_loss_db_per_90deg, self.link_bends)
        budget.add("PCM subarray switch", p.pcm_switch_loss_db)
        return budget

    def laser_power_w(self) -> float:
        """Wall-plug laser power: every wavelength on every bank's mode."""
        budget = self.laser_path_budget()
        per_wavelength = budget.required_launch_power_w(self.bank_input_power_w)
        laser = LaserSource(
            wall_plug_efficiency=self.params.laser_wall_plug_efficiency,
            max_optical_power_per_channel_w=1.0,
        )
        total_optical = (per_wavelength
                         * self.organization.wavelengths_required
                         * self.organization.banks)
        return laser.electrical_power_w(total_optical)

    # ------------------------------------------------------------------
    # SOA
    # ------------------------------------------------------------------

    def soa_power_w(self) -> float:
        """Active intra-subarray SOA power: (B*Mr*Mc/46) * 1.4 mW."""
        return active_soa_count(self.organization, self.params) \
            * self.params.intra_soa_power_w

    def total_soa_devices(self) -> int:
        """Provisioned SOA population (for area/cost reporting)."""
        return total_soa_count(self.organization, self.params)

    # ------------------------------------------------------------------
    # EO tuning
    # ------------------------------------------------------------------

    def tuning_power_w(self) -> float:
        """EO tuning of the accessed row's rings: B * 2 * Mc * P_EO."""
        rings = (self.organization.banks
                 * self.organization.row_access_mr_count)
        return rings * self.params.eo_tuning_power_w

    # ------------------------------------------------------------------

    def breakdown(self, name: str = "COMET") -> PowerBreakdown:
        """The full Fig. 7 power stack for this organization."""
        return PowerBreakdown(
            name=name,
            laser_w=self.laser_power_w(),
            soa_w=self.soa_power_w(),
            tuning_w=self.tuning_power_w(),
        )


def bit_density_study(params: OpticalParameters = TABLE_I) -> Dict[int, PowerBreakdown]:
    """The Fig. 7 sweep: power stacks for COMET-1b, -2b and -4b."""
    stacks: Dict[int, PowerBreakdown] = {}
    for bits in (1, 2, 4):
        org = MemoryOrganization.comet(bits)
        model = CometPowerModel(org, params=params)
        stacks[bits] = model.breakdown(name=f"COMET-{bits}b")
    return stacks
