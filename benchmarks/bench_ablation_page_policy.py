"""Ablation — DRAM page policy (controller fairness check).

The Fig. 9 DRAM baselines use open-page controllers; this ablation
verifies the comparison is not rigged by that choice: COMET's bandwidth
advantage survives whichever policy flatters the DRAM on each workload.
"""

import dataclasses

from repro.baselines.dram import dram_config
from repro.sim import MainMemorySimulator
from repro.sim.factory import build_comet_device, build_dram_device


def bench_ablation_page_policy(benchmark):
    def run():
        results = {}
        for policy in ("open", "closed"):
            device = build_dram_device(dataclasses.replace(
                dram_config("3D_DDR4"), page_policy=policy))
            results[policy] = {
                workload: MainMemorySimulator(device).run_workload(
                    workload, 3000)
                for workload in ("libquantum", "mcf")
            }
        comet = MainMemorySimulator(build_comet_device())
        results["comet"] = {
            workload: comet.run_workload(workload, 3000)
            for workload in ("libquantum", "mcf")
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for policy in ("open", "closed"):
        for workload, stats in results[policy].items():
            print(f"  3D_DDR4[{policy:6s}] {workload:10s}: "
                  f"{stats.bandwidth_gbps:6.2f} GB/s "
                  f"(hit rate {stats.row_hit_rate:.0%})")

    # Per-request service: each workload prefers the expected policy.
    def busy_per_request(policy, workload):
        stats = results[policy][workload]
        return stats.busy_time_ns / stats.num_requests

    assert busy_per_request("open", "libquantum") \
        < busy_per_request("closed", "libquantum")
    assert busy_per_request("closed", "mcf") < busy_per_request("open", "mcf")

    # COMET keeps its bandwidth lead under the DRAM-optimal policy.
    for workload in ("libquantum", "mcf"):
        best_dram = max(results["open"][workload].bandwidth_gbps,
                        results["closed"][workload].bandwidth_gbps)
        assert results["comet"][workload].bandwidth_gbps > best_dram
