"""Synthetic SPEC-like memory trace generators.

The paper drives its evaluation with SPEC benchmark memory traces [32].
Those traces are not redistributable, so each emulated workload is a
deterministic stochastic model of its post-LLC main-memory traffic, with
the three knobs that dominate main-memory behaviour:

* **intensity** — mean request inter-arrival (memory-bound vs compute-bound),
* **read fraction** — load/store balance after write-back filtering,
* **locality** — probability the next line continues a sequential run
  (row-buffer friendliness), with the remainder drawn from a working set.

The eight presets span the SPEC CPU mix the memory-systems literature
typically quotes: pointer-chasing (mcf), streaming stencil (lbm),
stream-read (libquantum), lattice QCD (milc), discrete-event simulation
(omnetpp), compiler (gcc), dense-flow solver (bwaves), and EM solver
(GemsFDTD).  The *relative* architecture rankings of Fig. 9 — which is
what the reproduction must preserve — depend on intensity/mix spread, not
on instruction-accurate traces (see DESIGN.md, substitutions).

Beyond the eight SPEC presets, the module provides the scenario axes the
multi-programmed PCM literature evaluates on:

* :class:`MixedWorkload` — two SPEC presets running concurrently in
  disjoint address regions (multi-programmed traffic, ``mix_*`` presets),
* :class:`PhasedWorkload` — piecewise-stationary traffic whose phases
  change intensity, read mix and locality (the ``bursty`` phase-change
  preset and the write-heavy ``checkpoint`` preset).

All generators are numpy-vectorized and emit a :class:`TraceArrays`
column store; ``generate()`` materializes :class:`MemRequest` objects
from it for the object-based simulator API.  ``cached_trace_arrays``
memoizes arrays per ``(workload, n, seed)`` so an evaluation grid
generates each trace once, not once per architecture.

**Zero-copy trace plane.**  For process fan-out, a trace can be
published once into POSIX shared memory (:func:`share_trace_arrays`)
and shipped to workers as a tiny :class:`TraceDescriptor` — name,
shapes, dtypes — instead of regenerating (or pickling) the column
arrays per worker.  :func:`attach_trace_arrays` maps the columns
read-only in the consuming process, with a per-process attach cache so
repeated tasks over one trace attach a segment exactly once.
:func:`clear_trace_plane` detaches everything and unlinks the segments
this process created (fork-safe: only the creating pid unlinks).
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import TraceError
from .request import MemRequest, OpType

#: Address-space stride between the programs of a multi-programmed mix.
#: 1 GiB comfortably clears every preset's working set (≤ 512 MiB) and is
#: a multiple of every row/line size in play, so per-program bank mapping
#: is a clean shift.
MIX_REGION_BYTES = 2 ** 30


@dataclass(frozen=True, eq=False)
class TraceArrays:
    """Column-store view of one generated trace.

    The arrays are immutable (write-locked) so cached instances can be
    shared freely between architectures and worker processes; the
    controller's vectorized path consumes them without materializing
    request objects.
    """

    name: str
    addresses: np.ndarray      # int64, byte addresses
    is_read: np.ndarray        # bool
    arrivals_ns: np.ndarray    # float64, non-decreasing
    line_bytes: int = 128
    thread_ids: Optional[np.ndarray] = None   # int, per-program tag

    def __post_init__(self) -> None:
        n = len(self.addresses)
        if n == 0:
            raise TraceError("empty trace")
        if len(self.is_read) != n or len(self.arrivals_ns) != n:
            raise TraceError("trace columns must have equal length")
        for arr in (self.addresses, self.is_read, self.arrivals_ns,
                    self.thread_ids):
            if arr is not None:
                arr.setflags(write=False)

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def num_requests(self) -> int:
        return len(self.addresses)

    @property
    def total_bytes(self) -> int:
        return len(self.addresses) * self.line_bytes

    def to_requests(self) -> List[MemRequest]:
        """Materialize the object view (one MemRequest per row)."""
        addresses = self.addresses.tolist()
        is_read = self.is_read.tolist()
        arrivals = self.arrivals_ns.tolist()
        threads = (self.thread_ids.tolist() if self.thread_ids is not None
                   else None)
        line_bytes = self.line_bytes
        return [
            MemRequest(
                address=addresses[i],
                op=OpType.READ if is_read[i] else OpType.WRITE,
                arrival_ns=arrivals[i],
                size_bytes=line_bytes,
                thread_id=threads[i] if threads is not None else 0,
            )
            for i in range(len(addresses))
        ]


def _line_walk(sequential: np.ndarray, random_lines: np.ndarray,
               working_set_lines: int) -> np.ndarray:
    """Vectorized sequential-run / random-jump line address walk.

    Replicates the recurrence ``line = (line + 1) % W`` on sequential
    steps and ``line = random_lines[i]`` on jumps: for every request the
    line is the last jump target plus the run length since that jump.
    """
    n = len(sequential)
    index = np.arange(n)
    reset = ~sequential
    if n:
        reset = reset.copy()
        reset[0] = True   # the first request always jumps
    last_reset = np.maximum.accumulate(np.where(reset, index, 0))
    return (random_lines[last_reset] + (index - last_reset)) % working_set_lines


@dataclass(frozen=True)
class SyntheticWorkload:
    """Parameter set of one emulated SPEC workload."""

    name: str
    mean_interarrival_ns: float
    read_fraction: float
    sequential_probability: float
    working_set_bytes: int
    line_bytes: int = 128

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0.0:
            raise TraceError("inter-arrival must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise TraceError("read fraction must be in [0, 1]")
        if not 0.0 <= self.sequential_probability < 1.0:
            raise TraceError("sequential probability must be in [0, 1)")
        if self.working_set_bytes < self.line_bytes:
            raise TraceError("working set smaller than one line")

    @property
    def working_set_lines(self) -> int:
        return self.working_set_bytes // self.line_bytes

    def generate_arrays(self, num_requests: int, seed: int = 1) -> TraceArrays:
        """Generate the trace as a column store (vectorized hot path)."""
        if num_requests <= 0:
            raise TraceError("need at least one request")
        rng = np.random.RandomState(seed)
        gaps = rng.exponential(self.mean_interarrival_ns, size=num_requests)
        arrivals = np.cumsum(gaps)
        is_read = rng.random_sample(num_requests) < self.read_fraction
        sequential = rng.random_sample(num_requests) < self.sequential_probability
        random_lines = rng.randint(0, self.working_set_lines,
                                   size=num_requests).astype(np.int64)
        lines = _line_walk(sequential, random_lines, self.working_set_lines)
        return TraceArrays(
            name=self.name,
            addresses=lines * self.line_bytes,
            is_read=is_read,
            arrivals_ns=arrivals,
            line_bytes=self.line_bytes,
        )

    def generate(self, num_requests: int, seed: int = 1) -> List[MemRequest]:
        """Generate a deterministic request list for this workload."""
        return self.generate_arrays(num_requests, seed=seed).to_requests()


@dataclass(frozen=True)
class MixedWorkload:
    """Multi-programmed mix: component presets run concurrently.

    Each component keeps its own arrival process, read mix and locality,
    and lives in its own :data:`MIX_REGION_BYTES`-aligned address region
    (no inter-program sharing, the standard multi-programmed assumption).
    The merged trace interleaves the programs by arrival time and tags
    each request with the program index in ``thread_ids``.

    ``num_requests`` is the total across programs, split evenly (the
    leading programs absorb the remainder).
    """

    name: str
    components: Tuple[SyntheticWorkload, ...]

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise TraceError("a mix needs at least two component programs")
        for component in self.components:
            if component.working_set_bytes > MIX_REGION_BYTES:
                raise TraceError(
                    f"component {component.name!r} working set exceeds the "
                    f"{MIX_REGION_BYTES}-byte mix region")
            if component.line_bytes != self.components[0].line_bytes:
                raise TraceError(
                    "mix components must share one line size, got "
                    f"{[c.line_bytes for c in self.components]}")

    @property
    def line_bytes(self) -> int:
        return self.components[0].line_bytes

    @property
    def read_fraction(self) -> float:
        """Request-weighted blend of the component read fractions."""
        return float(np.mean([c.read_fraction for c in self.components]))

    def generate_arrays(self, num_requests: int, seed: int = 1) -> TraceArrays:
        if num_requests < len(self.components):
            raise TraceError("need at least one request per program")
        base, extra = divmod(num_requests, len(self.components))
        columns = []
        for index, component in enumerate(self.components):
            count = base + (1 if index < extra else 0)
            part = component.generate_arrays(
                count, seed=_component_seed(seed, index))
            columns.append((
                part.addresses + index * MIX_REGION_BYTES,
                part.is_read,
                part.arrivals_ns,
                np.full(count, index, dtype=np.int64),
            ))
        addresses = np.concatenate([c[0] for c in columns])
        is_read = np.concatenate([c[1] for c in columns])
        arrivals = np.concatenate([c[2] for c in columns])
        threads = np.concatenate([c[3] for c in columns])
        order = np.argsort(arrivals, kind="stable")
        return TraceArrays(
            name=self.name,
            addresses=addresses[order],
            is_read=is_read[order],
            arrivals_ns=arrivals[order],
            line_bytes=self.line_bytes,
            thread_ids=threads[order],
        )

    def generate(self, num_requests: int, seed: int = 1) -> List[MemRequest]:
        return self.generate_arrays(num_requests, seed=seed).to_requests()


def _component_seed(seed: int, index: int) -> int:
    """Deterministic per-program seed (decorrelates the programs)."""
    return (seed + 7919 * (index + 1)) % (2 ** 32)


@dataclass(frozen=True)
class Phase:
    """One stationary segment of a :class:`PhasedWorkload`."""

    length_requests: int
    interarrival_scale: float
    read_fraction: float
    sequential_probability: float

    def __post_init__(self) -> None:
        if self.length_requests <= 0:
            raise TraceError("phase length must be positive")
        if self.interarrival_scale <= 0.0:
            raise TraceError("inter-arrival scale must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise TraceError("read fraction must be in [0, 1]")
        if not 0.0 <= self.sequential_probability < 1.0:
            raise TraceError("sequential probability must be in [0, 1)")


@dataclass(frozen=True)
class PhasedWorkload:
    """Piecewise-stationary traffic cycling through a tuple of phases.

    Request *i* belongs to the phase that covers ``i`` in the repeating
    phase pattern; each phase scales the base inter-arrival and sets its
    own read mix and locality.  Covers the bursty/phase-change behaviour
    (alternating memory-bound bursts and compute lulls) and checkpointing
    (long read-dominated compute, then a sequential write-heavy dump).
    """

    name: str
    mean_interarrival_ns: float
    working_set_bytes: int
    phases: Tuple[Phase, ...]
    line_bytes: int = 128

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0.0:
            raise TraceError("inter-arrival must be positive")
        if self.working_set_bytes < self.line_bytes:
            raise TraceError("working set smaller than one line")
        if not self.phases:
            raise TraceError("need at least one phase")

    @property
    def working_set_lines(self) -> int:
        return self.working_set_bytes // self.line_bytes

    @property
    def read_fraction(self) -> float:
        """Length-weighted blend of the phase read fractions."""
        lengths = np.array([p.length_requests for p in self.phases], float)
        fractions = np.array([p.read_fraction for p in self.phases])
        return float(np.sum(lengths * fractions) / np.sum(lengths))

    def phase_index(self, num_requests: int) -> np.ndarray:
        """Phase id of every request position (vectorized)."""
        lengths = np.array([p.length_requests for p in self.phases])
        boundaries = np.cumsum(lengths)
        period = int(boundaries[-1])
        position = np.arange(num_requests) % period
        return np.searchsorted(boundaries, position, side="right")

    def generate_arrays(self, num_requests: int, seed: int = 1) -> TraceArrays:
        if num_requests <= 0:
            raise TraceError("need at least one request")
        rng = np.random.RandomState(seed)
        phase_of = self.phase_index(num_requests)
        scale = np.array([p.interarrival_scale for p in self.phases])[phase_of]
        read_frac = np.array([p.read_fraction for p in self.phases])[phase_of]
        seq_prob = np.array(
            [p.sequential_probability for p in self.phases])[phase_of]
        gaps = rng.exponential(1.0, size=num_requests) \
            * (self.mean_interarrival_ns * scale)
        arrivals = np.cumsum(gaps)
        is_read = rng.random_sample(num_requests) < read_frac
        sequential = rng.random_sample(num_requests) < seq_prob
        random_lines = rng.randint(0, self.working_set_lines,
                                   size=num_requests).astype(np.int64)
        lines = _line_walk(sequential, random_lines, self.working_set_lines)
        return TraceArrays(
            name=self.name,
            addresses=lines * self.line_bytes,
            is_read=is_read,
            arrivals_ns=arrivals,
            line_bytes=self.line_bytes,
        )

    def generate(self, num_requests: int, seed: int = 1) -> List[MemRequest]:
        return self.generate_arrays(num_requests, seed=seed).to_requests()


#: Anything ``generate_trace`` accepts.
Workload = Union[SyntheticWorkload, MixedWorkload, PhasedWorkload]


#: The eight Fig. 9 workload presets.  Post-LLC main-memory traffic is
#: read-dominated (the writes are write-backs) and, for the memory-bound
#: SPEC members the paper's evaluation targets, intense enough to saturate
#: the memory system — that is the regime where Fig. 9 separates the
#: architectures.
SPEC_WORKLOADS: Dict[str, SyntheticWorkload] = {
    "mcf": SyntheticWorkload(
        name="mcf", mean_interarrival_ns=2.0, read_fraction=0.88,
        sequential_probability=0.05, working_set_bytes=512 * 2**20,
    ),
    "lbm": SyntheticWorkload(
        name="lbm", mean_interarrival_ns=2.5, read_fraction=0.62,
        sequential_probability=0.85, working_set_bytes=384 * 2**20,
    ),
    "libquantum": SyntheticWorkload(
        name="libquantum", mean_interarrival_ns=3.0, read_fraction=0.97,
        sequential_probability=0.92, working_set_bytes=64 * 2**20,
    ),
    "milc": SyntheticWorkload(
        name="milc", mean_interarrival_ns=4.0, read_fraction=0.85,
        sequential_probability=0.45, working_set_bytes=256 * 2**20,
    ),
    "omnetpp": SyntheticWorkload(
        name="omnetpp", mean_interarrival_ns=6.0, read_fraction=0.86,
        sequential_probability=0.12, working_set_bytes=128 * 2**20,
    ),
    "gcc": SyntheticWorkload(
        name="gcc", mean_interarrival_ns=10.0, read_fraction=0.90,
        sequential_probability=0.35, working_set_bytes=96 * 2**20,
    ),
    "bwaves": SyntheticWorkload(
        name="bwaves", mean_interarrival_ns=2.5, read_fraction=0.80,
        sequential_probability=0.75, working_set_bytes=448 * 2**20,
    ),
    "gemsfdtd": SyntheticWorkload(
        name="gemsfdtd", mean_interarrival_ns=3.5, read_fraction=0.82,
        sequential_probability=0.55, working_set_bytes=320 * 2**20,
    ),
}


def _mix(name_a: str, name_b: str) -> MixedWorkload:
    return MixedWorkload(
        name=f"mix_{name_a}_{name_b}",
        components=(SPEC_WORKLOADS[name_a], SPEC_WORKLOADS[name_b]),
    )


#: Multi-programmed pairs spanning the interesting contrasts: random vs
#: streaming, read-heavy vs write-heavy, intense vs relaxed.
MIXED_WORKLOADS: Dict[str, MixedWorkload] = {
    mix.name: mix for mix in (
        _mix("mcf", "lbm"),            # pointer-chasing + write-heavy stream
        _mix("libquantum", "omnetpp"),  # streaming reads + random events
        _mix("gcc", "bwaves"),          # relaxed compute + intense stream
        _mix("milc", "gemsfdtd"),       # two mid-locality HPC solvers
    )
}


#: Phase-change and checkpointing presets.  ``bursty`` alternates
#: memory-bound bursts (4x the base intensity) with compute lulls (4x
#: slower); ``checkpoint`` models periodic state dumps: long
#: read-dominated compute phases punctuated by sequential write storms.
PHASED_WORKLOADS: Dict[str, PhasedWorkload] = {
    "bursty": PhasedWorkload(
        name="bursty", mean_interarrival_ns=4.0,
        working_set_bytes=256 * 2**20,
        phases=(
            Phase(length_requests=512, interarrival_scale=0.25,
                  read_fraction=0.85, sequential_probability=0.60),
            Phase(length_requests=512, interarrival_scale=4.0,
                  read_fraction=0.90, sequential_probability=0.20),
        ),
    ),
    "checkpoint": PhasedWorkload(
        name="checkpoint", mean_interarrival_ns=3.0,
        working_set_bytes=384 * 2**20,
        phases=(
            Phase(length_requests=1536, interarrival_scale=1.0,
                  read_fraction=0.92, sequential_probability=0.40),
            Phase(length_requests=512, interarrival_scale=0.5,
                  read_fraction=0.05, sequential_probability=0.95),
        ),
    ),
}


#: Every named workload the CLI / evaluation engine accepts.
WORKLOADS: Dict[str, Workload] = {
    **SPEC_WORKLOADS, **MIXED_WORKLOADS, **PHASED_WORKLOADS,
}

WORKLOAD_NAMES: Tuple[str, ...] = tuple(sorted(WORKLOADS))

#: Accelerator-traffic presets (the Fig. 10 DOTA workloads).  Resolved
#: lazily through :mod:`repro.accel.dota` because the accel layer builds
#: them *from* this module's workload classes — a module-level import
#: here would be a cycle.  Listing the names statically keeps them
#: addressable (CLI choices, error messages, the evaluation service's
#: trust boundary) without importing the accel stack until a grid
#: actually names one.
ACCEL_WORKLOAD_NAMES: Tuple[str, ...] = ("dota-DeiT-B", "dota-DeiT-T")

_ACCEL_WORKLOADS: Dict[str, Workload] = {}

#: Every workload name any consumer can address (CLI, wire format).
ALL_WORKLOAD_NAMES: Tuple[str, ...] = tuple(
    sorted(WORKLOAD_NAMES + ACCEL_WORKLOAD_NAMES))


def _accel_workloads() -> Dict[str, Workload]:
    if not _ACCEL_WORKLOADS:
        from ..accel.dota import dota_traffic_workloads

        loaded = dota_traffic_workloads()
        missing = set(ACCEL_WORKLOAD_NAMES) - set(loaded)
        if missing:
            raise TraceError(
                f"accel workload registry is missing {sorted(missing)}; "
                f"dota_traffic_workloads returned {sorted(loaded)}")
        _ACCEL_WORKLOADS.update(loaded)
    return _ACCEL_WORKLOADS


def get_workload(workload_name: str) -> Workload:
    """Look up any named workload preset (SPEC, mixes, phased, accel)."""
    try:
        return WORKLOADS[workload_name]
    except KeyError:
        pass
    if workload_name in ACCEL_WORKLOAD_NAMES:
        return _accel_workloads()[workload_name]
    raise TraceError(
        f"unknown workload {workload_name!r}; known: "
        f"{list(ALL_WORKLOAD_NAMES)}"
    ) from None


def generate_trace_arrays(
    workload_name: str, num_requests: int = 20_000, seed: int = 1
) -> TraceArrays:
    """Column-store trace of one named workload."""
    return get_workload(workload_name).generate_arrays(num_requests, seed=seed)


@lru_cache(maxsize=32)
def cached_trace_arrays(
    workload_name: str, num_requests: int = 20_000, seed: int = 1
) -> TraceArrays:
    """Memoized :func:`generate_trace_arrays`.

    The arrays are write-locked, so sharing one instance across every
    architecture of an evaluation grid (and across controller runs) is
    safe; an (arch x workload) grid pays one generation per workload.
    """
    return generate_trace_arrays(workload_name, num_requests, seed)


def generate_trace(
    workload_name: str, num_requests: int = 20_000, seed: int = 1
) -> List[MemRequest]:
    """Generate the canonical trace of one named workload."""
    return get_workload(workload_name).generate(num_requests, seed=seed)


# ---------------------------------------------------------------------------
# zero-copy shared-memory trace plane


@dataclass(frozen=True)
class TraceDescriptor:
    """Everything a process needs to map a published trace: the shared-
    memory segment name plus column shapes/metadata.  A descriptor
    pickles in tens of bytes — this is what the engine's fan-out ships
    instead of the column arrays."""

    shm_name: str
    workload: str
    num_requests: int
    seed: int
    line_bytes: int
    has_thread_ids: bool

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.workload, self.num_requests, self.seed)


#: Column layout of one shared segment, in offset order.
def _segment_layout(n: int, has_threads: bool):
    """``[(attr, dtype, offset, nbytes)]`` for a segment holding one
    trace's columns back to back."""
    layout = []
    offset = 0
    for attr, dtype in (("addresses", np.int64), ("arrivals_ns", np.float64),
                        ("is_read", np.bool_),
                        *((("thread_ids", np.int64),) if has_threads else ())):
        nbytes = n * np.dtype(dtype).itemsize
        layout.append((attr, np.dtype(dtype), offset, nbytes))
        offset += nbytes
    return layout, offset


#: Segments this process *created* (and their pid, so a forked child
#: never unlinks its parent's segments): key -> (SharedMemory, descriptor,
#: owner_pid).  Attached segments (created elsewhere) live separately.
_SHARED_SEGMENTS: Dict[Tuple[str, int, int], Tuple[object, TraceDescriptor, int]] = {}
_ATTACHED_TRACES: Dict[str, Tuple[object, TraceArrays]] = {}

#: Cap on concurrently published segments (mirrors the generation
#: cache's bound): /dev/shm is RAM-backed, so a long-lived server
#: sweeping many (workload, n, seed) combinations must not accumulate
#: segments without bound.  Publishing past the cap unlinks the oldest
#: owned segment first — workers holding its descriptor fall back to
#: local generation, which is merely slower.
MAX_OWNED_SEGMENTS = 32

_ATTACH_LOCK = threading.Lock()


def _attach_silently(name: str):
    """Open an existing segment without registering it with the
    resource tracker.

    Before 3.13 (``track=False``), ``SharedMemory(name=...)`` registers
    even pure attaches, so the tracker of whichever attaching process
    exits last unlinks segments it never owned (CPython bpo-39959).
    Sending ``unregister`` instead would race other attachers through
    the fork-shared tracker, so registration is suppressed for the
    duration of the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:    # Python < 3.13
        from multiprocessing import resource_tracker

        with _ATTACH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = \
                lambda rname, rtype: None if rtype == "shared_memory" \
                else original(rname, rtype)
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original


def share_trace_arrays(workload: str, num_requests: int,
                       seed: int) -> Optional[TraceDescriptor]:
    """Publish one trace into shared memory; returns its descriptor.

    Idempotent per ``(workload, n, seed)`` within a process.  Returns
    ``None`` where POSIX shared memory is unavailable (restricted
    sandboxes) — callers fall back to per-process generation, which is
    merely slower.
    """
    key = (workload, num_requests, seed)
    entry = _SHARED_SEGMENTS.get(key)
    if entry is not None:
        return entry[1]
    pid = os.getpid()
    owned = [k for k, (_shm, _d, owner) in _SHARED_SEGMENTS.items()
             if owner == pid]
    while len(owned) >= MAX_OWNED_SEGMENTS:
        # FIFO eviction (dict preserves insertion order): unlink the
        # oldest segment this process published.
        oldest = owned.pop(0)
        shm, _descriptor, _owner = _SHARED_SEGMENTS.pop(oldest)
        try:
            shm.close()
        except (OSError, BufferError):
            pass
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass
    trace = cached_trace_arrays(workload, num_requests, seed)
    has_threads = trace.thread_ids is not None
    layout, total = _segment_layout(len(trace), has_threads)
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    except (ImportError, OSError, PermissionError):
        return None
    for attr, dtype, offset, nbytes in layout:
        column = np.ndarray((len(trace),), dtype=dtype, buffer=shm.buf,
                            offset=offset)
        column[:] = getattr(trace, attr)
    descriptor = TraceDescriptor(
        shm_name=shm.name, workload=workload, num_requests=num_requests,
        seed=seed, line_bytes=trace.line_bytes, has_thread_ids=has_threads)
    _SHARED_SEGMENTS[key] = (shm, descriptor, os.getpid())
    return descriptor


def attach_trace_arrays(descriptor: TraceDescriptor) -> TraceArrays:
    """Map a published trace read-only (per-process attach cache).

    The returned :class:`TraceArrays` views the shared pages directly —
    no copy, no regeneration; repeated calls for one segment return the
    cached view.  If the segment is gone (creator unlinked it), the
    trace is regenerated locally — correctness never depends on the
    plane.
    """
    cached = _ATTACHED_TRACES.get(descriptor.shm_name)
    if cached is not None:
        return cached[1]
    own = _SHARED_SEGMENTS.get(descriptor.key)
    if own is not None and own[1].shm_name == descriptor.shm_name:
        # This process published the segment; serve the source arrays.
        return cached_trace_arrays(*descriptor.key)
    try:
        shm = _attach_silently(descriptor.shm_name)
    except (ImportError, OSError, PermissionError, FileNotFoundError):
        return cached_trace_arrays(*descriptor.key)
    n = descriptor.num_requests
    layout, _total = _segment_layout(n, descriptor.has_thread_ids)
    columns = {
        attr: np.ndarray((n,), dtype=dtype, buffer=shm.buf, offset=offset)
        for attr, dtype, offset, _nbytes in layout
    }
    trace = TraceArrays(
        name=descriptor.workload,
        addresses=columns["addresses"],
        is_read=columns["is_read"],
        arrivals_ns=columns["arrivals_ns"],
        line_bytes=descriptor.line_bytes,
        thread_ids=columns.get("thread_ids"),
    )
    # Keep the mapping alive as long as the views are cached — but
    # bounded like the publisher side: unlinking a segment only removes
    # its name, the pages stay resident while any attacher keeps its
    # mapping, so an unbounded attach cache in a long-lived pool worker
    # would defeat MAX_OWNED_SEGMENTS.
    while len(_ATTACHED_TRACES) >= MAX_OWNED_SEGMENTS:
        _name, (old_shm, _trace) = next(iter(_ATTACHED_TRACES.items()))
        del _ATTACHED_TRACES[_name]
        try:
            old_shm.close()
        except (OSError, BufferError):
            pass    # views still referenced: GC reclaims when they go
    _ATTACHED_TRACES[descriptor.shm_name] = (shm, trace)
    return trace


def trace_plane_stats() -> Dict[str, int]:
    """Observability: segments owned/attached and bytes published."""
    owned = [entry for entry in _SHARED_SEGMENTS.values()
             if entry[2] == os.getpid()]
    return {
        "owned_segments": len(owned),
        "owned_bytes": sum(entry[0].size for entry in owned),
        "attached_segments": len(_ATTACHED_TRACES),
    }


def clear_trace_plane() -> None:
    """Detach every mapped segment and unlink the ones this process
    created.  Long-lived servers call this (via
    ``engine.clear_device_caches``) after model edits so /dev/shm never
    accumulates segments; fork-safe — a child inheriting the registry
    closes but never unlinks its parent's segments."""
    pid = os.getpid()
    for shm, _descriptor, owner in _SHARED_SEGMENTS.values():
        try:
            shm.close()
        except (OSError, BufferError):
            pass
        if owner == pid:
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
    _SHARED_SEGMENTS.clear()
    for shm, _trace in _ATTACHED_TRACES.values():
        try:
            shm.close()
        except (OSError, BufferError):
            pass
    _ATTACHED_TRACES.clear()


atexit.register(clear_trace_plane)
