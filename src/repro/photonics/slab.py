"""Multilayer slab waveguide TE mode solver (transfer-matrix method).

This solver is one half of the reproduction's substitute for Ansys
Lumerical FDTD (see DESIGN.md).  It finds the guided TE modes of an
arbitrary 1-D layer stack (semi-infinite claddings top and bottom) by

1. propagating the tangential field vector ``(Ey, dEy/dx)`` through the
   stack with per-layer 2x2 transfer matrices, starting from an
   exponentially decaying solution in the bottom cladding, and
2. root-finding the dispersion function ``F(n_eff) = Ey' + gamma_top*Ey``
   at the top interface, whose zeros are the guided modes.

Losses are handled perturbatively: the solver uses the *real* parts of the
layer indices to find ``n_eff`` and the field profile, then computes the
modal extinction from the per-layer confinement factors:

    kappa_eff = sum_i  Gamma_i * kappa_i * (n_i / n_eff)

which is the standard first-order result for weakly absorbing layers and
is accurate for the thin GST films used here (kappa << n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq

from ..errors import SolverError


@dataclass(frozen=True)
class Layer:
    """One finite layer of the stack.

    ``index`` may be complex; its imaginary part (extinction coefficient)
    only enters the perturbative loss computation.  ``name`` identifies the
    layer in confinement-factor queries.
    """

    name: str
    index: complex
    thickness_m: float

    def __post_init__(self) -> None:
        if self.thickness_m <= 0.0:
            raise SolverError(f"layer {self.name!r} must have positive thickness")
        if self.index.real <= 0.0:
            raise SolverError(f"layer {self.name!r} must have positive index")


@dataclass(frozen=True)
class SlabMode:
    """A guided TE mode of a layer stack."""

    effective_index: float
    modal_extinction: float
    confinement: Dict[str, float]          # per finite layer, plus claddings
    order: int

    @property
    def complex_effective_index(self) -> complex:
        return complex(self.effective_index, self.modal_extinction)


class MultilayerSlabSolver:
    """TE-polarized guided-mode solver for a 1-D multilayer stack."""

    def __init__(
        self,
        layers: Sequence[Layer],
        bottom_cladding_index: complex,
        top_cladding_index: complex,
        wavelength_m: float,
    ) -> None:
        if not layers:
            raise SolverError("stack needs at least one finite layer")
        if wavelength_m <= 0.0:
            raise SolverError("wavelength must be positive")
        self.layers = list(layers)
        self.n_bottom = bottom_cladding_index
        self.n_top = top_cladding_index
        self.wavelength_m = wavelength_m
        self.k0 = 2.0 * math.pi / wavelength_m
        self._n_clad_max = max(self.n_bottom.real, self.n_top.real)
        self._n_core_max = max(layer.index.real for layer in self.layers)
        if self._n_core_max <= self._n_clad_max:
            raise SolverError(
                "no guided modes possible: core index does not exceed cladding"
            )

    # ------------------------------------------------------------------
    # Dispersion function
    # ------------------------------------------------------------------

    def _transverse_k(self, index_real: float, n_eff: float) -> complex:
        """Transverse wavenumber in a layer; imaginary when evanescent."""
        arg = complex(index_real ** 2 - n_eff ** 2)
        return self.k0 * np.sqrt(arg)

    def _decay_const(self, index_real: float, n_eff: float) -> float:
        """Cladding decay constant gamma (guided modes only)."""
        val = n_eff ** 2 - index_real ** 2
        if val <= 0.0:
            raise SolverError("mode is not guided against this cladding")
        return self.k0 * math.sqrt(val)

    def dispersion(self, n_eff: float) -> float:
        """Dispersion function whose zeros are guided TE modes."""
        gamma_b = self._decay_const(self.n_bottom.real, n_eff)
        gamma_t = self._decay_const(self.n_top.real, n_eff)
        # Field vector (Ey, Ey') at the bottom interface for a decaying
        # bottom-cladding solution exp(+gamma_b * x), x < 0.
        field = np.array([1.0 + 0j, gamma_b + 0j])
        for layer in self.layers:
            k = self._transverse_k(layer.index.real, n_eff)
            d = layer.thickness_m
            kd = k * d
            cos_kd = np.cos(kd)
            if abs(k) < 1e-12:
                sinc_term = d        # lim sin(kd)/k as k -> 0
                ksin_term = 0.0
            else:
                sinc_term = np.sin(kd) / k
                ksin_term = -k * np.sin(kd)
            matrix = np.array([[cos_kd, sinc_term], [ksin_term, cos_kd]])
            field = matrix @ field
        # Top cladding must decay: Ey' = -gamma_t * Ey.
        residual = field[1] + gamma_t * field[0]
        return float(residual.real)

    # ------------------------------------------------------------------
    # Mode finding
    # ------------------------------------------------------------------

    def find_effective_indices(self, samples: int = 1200) -> List[float]:
        """Scan + bisect for all guided-mode effective indices (descending)."""
        lo = self._n_clad_max + 1e-6
        hi = self._n_core_max - 1e-9
        if hi <= lo:
            return []
        grid = np.linspace(lo, hi, samples)
        values = np.array([self.dispersion(float(x)) for x in grid])
        roots: List[float] = []
        for i in range(len(grid) - 1):
            a, b = values[i], values[i + 1]
            if a == 0.0:
                roots.append(float(grid[i]))
            elif a * b < 0.0:
                root = brentq(self.dispersion, float(grid[i]), float(grid[i + 1]),
                              xtol=1e-12, rtol=1e-12)
                roots.append(float(root))
        return sorted(set(roots), reverse=True)

    def solve(self, max_modes: int = 4, samples: int = 1200) -> List[SlabMode]:
        """Return up to ``max_modes`` guided TE modes, fundamental first."""
        indices = self.find_effective_indices(samples=samples)[:max_modes]
        modes = []
        for order, n_eff in enumerate(indices):
            confinement = self._confinement_factors(n_eff)
            kappa_eff = self._modal_extinction(n_eff, confinement)
            modes.append(SlabMode(
                effective_index=n_eff,
                modal_extinction=kappa_eff,
                confinement=confinement,
                order=order,
            ))
        return modes

    def fundamental(self, samples: int = 1200) -> SlabMode:
        """The fundamental TE mode; raises if the stack guides nothing."""
        modes = self.solve(max_modes=1, samples=samples)
        if not modes:
            raise SolverError("stack supports no guided TE mode")
        return modes[0]

    # ------------------------------------------------------------------
    # Field profile and confinement
    # ------------------------------------------------------------------

    def _field_coefficients(self, n_eff: float) -> List[Tuple[float, complex, complex]]:
        """Per-layer (start position, Ey, Ey') at each layer's bottom edge."""
        gamma_b = self._decay_const(self.n_bottom.real, n_eff)
        field = np.array([1.0 + 0j, gamma_b + 0j])
        coefficients = []
        x = 0.0
        for layer in self.layers:
            coefficients.append((x, field[0], field[1]))
            k = self._transverse_k(layer.index.real, n_eff)
            d = layer.thickness_m
            kd = k * d
            cos_kd = np.cos(kd)
            if abs(k) < 1e-12:
                sinc_term = d
                ksin_term = 0.0
            else:
                sinc_term = np.sin(kd) / k
                ksin_term = -k * np.sin(kd)
            matrix = np.array([[cos_kd, sinc_term], [ksin_term, cos_kd]])
            field = matrix @ field
            x += d
        coefficients.append((x, field[0], field[1]))  # top interface
        return coefficients

    def _confinement_factors(self, n_eff: float) -> Dict[str, float]:
        """Fraction of ``|Ey|^2`` in each layer (plus the two claddings)."""
        coefficients = self._field_coefficients(n_eff)
        gamma_b = self._decay_const(self.n_bottom.real, n_eff)
        gamma_t = self._decay_const(self.n_top.real, n_eff)

        integrals: Dict[str, float] = {}
        # Bottom cladding: |Ey|^2 = exp(2 gamma_b x) for x<0, Ey(0)=1.
        integrals["bottom_cladding"] = 1.0 / (2.0 * gamma_b)
        # Finite layers: integrate the analytic piecewise field numerically.
        for layer, (x0, ey0, eyp0) in zip(self.layers, coefficients[:-1]):
            k = self._transverse_k(layer.index.real, n_eff)
            d = layer.thickness_m
            points = max(64, int(d / 0.25e-9))
            xs = np.linspace(0.0, d, min(points, 4096))
            if abs(k) < 1e-12:
                ey = ey0 + eyp0 * xs
            else:
                ey = ey0 * np.cos(k * xs) + (eyp0 / k) * np.sin(k * xs)
            integrals[layer.name] = float(np.trapezoid(np.abs(ey) ** 2, xs))
        # Top cladding: decaying exponential from the top-interface value.
        ey_top = coefficients[-1][1]
        integrals["top_cladding"] = float(abs(ey_top) ** 2 / (2.0 * gamma_t))

        total = sum(integrals.values())
        if total <= 0.0:
            raise SolverError("field normalization failed")
        return {name: value / total for name, value in integrals.items()}

    def _modal_extinction(self, n_eff: float, confinement: Dict[str, float]) -> float:
        """First-order modal extinction from per-layer material extinction."""
        kappa_eff = 0.0
        for layer in self.layers:
            kappa = layer.index.imag
            if kappa != 0.0:
                kappa_eff += (confinement[layer.name] * kappa
                              * (layer.index.real / n_eff))
        for name, index in (("bottom_cladding", self.n_bottom),
                            ("top_cladding", self.n_top)):
            if index.imag != 0.0:
                kappa_eff += confinement[name] * index.imag * (index.real / n_eff)
        return kappa_eff
