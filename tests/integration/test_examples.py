"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess with the repository's interpreter.
"""

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=300,
    )


class TestExamplesRun:
    def test_all_examples_discovered(self):
        assert set(ALL_EXAMPLES) == {
            "quickstart.py",
            "design_space_exploration.py",
            "crosstalk_corruption_demo.py",
            "spec_workload_sim.py",
            "parallel_eval_demo.py",
            "dota_accelerator_study.py",
            "functional_memory_demo.py",
            "reliability_study.py",
            "sweep_resume_demo.py",
            "server_smoke.py",
            "fabric_smoke.py",
            "sanitize_smoke.py",
        }

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "COMET-4b" in result.stdout
        assert "reset energies" in result.stdout

    def test_design_space_exploration(self):
        result = run_example("design_space_exploration.py")
        assert result.returncode == 0, result.stderr
        assert "selected: GST" in result.stdout
        assert "b=4" in result.stdout

    def test_crosstalk_corruption_demo(self):
        result = run_example("crosstalk_corruption_demo.py")
        assert result.returncode == 0, result.stderr
        assert "Damage" in result.stdout

    def test_spec_workload_sim_small(self):
        result = run_example("spec_workload_sim.py", "1500")
        assert result.returncode == 0, result.stderr
        assert "COMET vs COSMOS" in result.stdout

    def test_parallel_eval_demo_small(self):
        result = run_example("parallel_eval_demo.py", "1200", "2")
        assert result.returncode == 0, result.stderr
        assert "identical results: True" in result.stdout
        assert "checkpoint" in result.stdout

    def test_dota_accelerator_study(self):
        result = run_example("dota_accelerator_study.py")
        assert result.returncode == 0, result.stderr
        assert "DeiT-B" in result.stdout

    def test_functional_memory_demo(self):
        result = run_example("functional_memory_demo.py")
        assert result.returncode == 0, result.stderr
        assert "Cell decision errors: 0" in result.stdout

    def test_reliability_study(self):
        result = run_example("reliability_study.py")
        assert result.returncode == 0, result.stderr
        assert "disturb-free: True" in result.stdout

    def test_sweep_resume_demo_small(self):
        result = run_example("sweep_resume_demo.py", "800")
        assert result.returncode == 0, result.stderr
        assert "18 cells" in result.stdout
        assert "warm run : 0 computed, 18 cached" in result.stdout
        assert "architecture,workload" in result.stdout

    def test_server_smoke(self):
        result = run_example("server_smoke.py")
        assert result.returncode == 0, result.stderr
        assert "hit served without recomputation" in result.stdout
        assert "bit-identical" in result.stdout
        assert "clean shutdown" in result.stdout

    def test_sanitize_smoke(self):
        result = run_example("sanitize_smoke.py")
        assert result.returncode == 0, result.stderr
        # Unsupported toolchains skip legs; supported ones must pass.
        assert ("all legs passed" in result.stdout
                or "SKIP" in result.stdout), result.stdout

    def test_fabric_smoke(self):
        result = run_example("fabric_smoke.py")
        assert result.returncode == 0, result.stderr
        assert "fabric results bit-identical to serial run_sweep" \
            in result.stdout
        assert "stores merged without conflicts" in result.stdout
        assert "merged store warm no-compute" in result.stdout
        assert "clean shutdown" in result.stdout
