"""Crystallization kinetics and melt-quench amorphization.

The paper extracts phase maps from its transient HEAT simulations with a
simple rule (Section III.B): "regions of the GST cell which have a
temperature between Tl and Tg have a crystalline structure, whereas the
regions with temperatures above Tl exist in an amorphous state because of
the melt and quench mechanism."

We add time to that rule with the standard PCM kinetics:

* **Crystallization** follows JMAK with the Scheil additivity rule for
  non-isothermal histories: progress ``theta = integral k(T(t)) dt`` and
  crystalline fraction ``X = 1 - exp(-theta^n)``.  The rate ``k(T)`` is a
  temperature-windowed peak between Tg and Tl — Arrhenius-activated on the
  cold side, driving-force-limited near the melt — which is the shape every
  measured GST TTT diagram has.
* **Amorphization** happens when material melts (T > Tl) and is quenched
  faster than the critical rate; melted-and-quenched volume becomes
  amorphous.  Partial amorphization (MLC RESET-side levels) corresponds to
  partial melt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import ProgrammingError
from ..materials.database import KineticsParameters, ThermalProperties

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class MeltQuenchResult:
    """Outcome of a melt-quench attempt."""

    melted_fraction: float
    quench_rate_k_per_s: float
    amorphized: bool
    resulting_crystalline_fraction: float


class CrystallizationKinetics:
    """JMAK/Scheil crystallization plus melt-quench rules for one material."""

    def __init__(
        self,
        params: KineticsParameters,
        thermal: ThermalProperties,
        full_melt_margin_k: float = 50.0,
    ) -> None:
        if full_melt_margin_k <= 0.0:
            raise ProgrammingError("full-melt margin must be positive")
        self.params = params
        self.thermal = thermal
        self.full_melt_margin_k = full_melt_margin_k

    # ------------------------------------------------------------------
    # Crystallization
    # ------------------------------------------------------------------

    def rate_per_s(self, temperature_k: ArrayLike) -> ArrayLike:
        """Crystallization rate k(T): a windowed peak between Tg and Tl."""
        temp = np.asarray(temperature_k, dtype=float)
        p = self.params
        in_window = ((temp > self.thermal.crystallization_temperature_k)
                     & (temp < self.thermal.melting_temperature_k))
        arg = ((temp - p.optimal_temperature_k) / p.window_sigma_k) ** 2
        rate = np.where(in_window, p.k_max_per_s * np.exp(-arg), 0.0)
        if np.isscalar(temperature_k):
            return float(rate)
        return rate

    def progress(self, temperatures_k: np.ndarray, dt_s: float) -> float:
        """Scheil progress integral over a sampled temperature history."""
        if dt_s <= 0.0:
            raise ProgrammingError("time step must be positive")
        rates = self.rate_per_s(np.asarray(temperatures_k, dtype=float))
        return float(np.sum(rates) * dt_s)

    def fraction_from_progress(self, theta: float) -> float:
        """JMAK: X = 1 - exp(-theta^n)."""
        if theta < 0.0:
            raise ProgrammingError("progress must be non-negative")
        return 1.0 - math.exp(-(theta ** self.params.avrami_exponent))

    def progress_for_fraction(self, fraction: float) -> float:
        """Inverse JMAK: theta needed to reach a crystalline fraction."""
        if not 0.0 <= fraction < 1.0:
            raise ProgrammingError(
                f"target fraction must be in [0, 1), got {fraction}"
            )
        if fraction == 0.0:
            return 0.0
        return (-math.log(1.0 - fraction)) ** (1.0 / self.params.avrami_exponent)

    def isothermal_fraction(self, temperature_k: float, time_s: float) -> float:
        """Crystalline fraction grown from X=0 after an isothermal hold."""
        if time_s < 0.0:
            raise ProgrammingError("time must be non-negative")
        theta = self.rate_per_s(temperature_k) * time_s
        return self.fraction_from_progress(theta)

    def time_to_fraction_s(self, temperature_k: float, fraction: float) -> float:
        """Isothermal hold time to reach a target crystalline fraction."""
        rate = self.rate_per_s(temperature_k)
        if rate <= 0.0:
            raise ProgrammingError(
                f"no crystallization at {temperature_k:.0f} K (outside the "
                f"Tg–Tl window)"
            )
        return self.progress_for_fraction(fraction) / rate

    def evolve_fraction(
        self,
        initial_fraction: float,
        temperatures_k: np.ndarray,
        dt_s: float,
    ) -> float:
        """Evolve a starting fraction through a temperature history.

        Uses additivity: converts the initial fraction to an equivalent
        progress, accumulates the history's progress, and converts back.
        Melting is handled separately (see :meth:`melt_quench`).
        """
        if not 0.0 <= initial_fraction <= 1.0:
            raise ProgrammingError("initial fraction must be in [0, 1]")
        if initial_fraction >= 1.0:
            return 1.0
        theta0 = self.progress_for_fraction(min(initial_fraction, 0.999999))
        theta = theta0 + self.progress(temperatures_k, dt_s)
        return self.fraction_from_progress(theta)

    # ------------------------------------------------------------------
    # Amorphization (melt-quench)
    # ------------------------------------------------------------------

    def melt_fraction_from_peak(self, peak_temperature_k: float) -> float:
        """Fraction of the film volume melted by a pulse peaking at ``T``.

        Zero below Tl; complete at ``Tl + full_melt_margin``; linear in
        between (a proxy for the melt front sweeping the film thickness,
        which the 1-D solver resolves explicitly).
        """
        t_melt = self.thermal.melting_temperature_k
        if peak_temperature_k <= t_melt:
            return 0.0
        fraction = (peak_temperature_k - t_melt) / self.full_melt_margin_k
        return min(fraction, 1.0)

    def melt_quench(
        self,
        initial_fraction: float,
        peak_temperature_k: float,
        quench_rate_k_per_s: float,
    ) -> MeltQuenchResult:
        """Apply a melt-quench event to a cell state.

        The melted share of the volume re-freezes amorphous when the quench
        is fast enough, otherwise it recrystallizes (the pulse failed).
        """
        if quench_rate_k_per_s < 0.0:
            raise ProgrammingError("quench rate must be non-negative")
        melted = self.melt_fraction_from_peak(peak_temperature_k)
        fast_enough = quench_rate_k_per_s >= self.params.critical_quench_rate_k_per_s
        if melted == 0.0:
            return MeltQuenchResult(0.0, quench_rate_k_per_s, False, initial_fraction)
        if fast_enough:
            resulting = initial_fraction * (1.0 - melted)
            return MeltQuenchResult(melted, quench_rate_k_per_s, True, resulting)
        # Slow quench: melted volume recrystallizes on the way down.
        resulting = initial_fraction * (1.0 - melted) + melted
        return MeltQuenchResult(melted, quench_rate_k_per_s, False, min(resulting, 1.0))
