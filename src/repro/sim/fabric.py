"""Distributed sweep fabric: one coordinator, an *elastic* fleet.

``run_sweep`` parallelizes a grid across the cores of one box; this
module is the step to a cluster.  A coordinator partitions a
:class:`~repro.sim.sweep.SweepSpec` across remote evaluation daemons
and drives the fleet to completion:

* **Digest-prefix partitioning.**  Every cell routes to the host whose
  index matches its :func:`~repro.sim.store.task_digest` prefix
  (``int(digest[:8], 16) % len(hosts)``) — deterministic, uniform, and
  a disjoint cover of the grid, so each daemon's result store and LRU
  see a stable working set across runs.
* **Bounded in-flight windows.**  ``window`` concurrent single-cell
  requests per host; a slow host never accumulates an unbounded queue
  of in-flight work that would all be lost if it died.
* **Work stealing.**  A host that drains its own partition steals cells
  from the tail of the largest remaining partition — the fleet finishes
  together instead of waiting on the slowest member.
* **Health-checked membership.**  A periodic prober (the same
  ``/healthz`` surface ``EvalClient.ping`` uses) moves every host
  through ``alive → suspect → dead → rejoining`` states: one failed
  probe makes a host *suspect* (no new dispatches; its queue stays, a
  healthy peer may steal from it), a second consecutive failure — or a
  transport failure on a real dispatch — declares it *dead* (its
  unfinished queue re-enters the shared pool).  A dead host that
  answers health checks again is **re-admitted**: marked ``rejoining``,
  then ``alive``, with fresh workers that are immediately eligible for
  work-stealing.  Nothing is lost for the rest of the run just because
  a daemon restarted.
* **Mid-run join.**  ``run_fabric(_async)`` accepts a
  :class:`MembershipSource` — a static list, a watched host file
  (:class:`HostFileMembership`), or a coordinator-side join endpoint
  (:class:`MembershipEndpoint`, ``POST /join``).  A joining host
  receives an explicit handoff: the coordinator re-partitions only the
  *unstarted* remainder by digest prefix across the live fleet;
  completed and in-flight cells never move, so results stay
  bit-identical to a serial :func:`~repro.sim.sweep.run_sweep`.  A host
  removed from the source is evicted (its queue re-dispatched).
* **Failure re-dispatch.**  A transport failure (after the client's own
  retry/backoff budget) marks the host dead; its unfinished cells
  re-enter the shared queue for the survivors.  Each failed cell
  attempt backs off exponentially (capped at ``max_backoff``) and
  consumes one unit of the cell's ``cell_attempts`` budget; a cell that
  exhausts its budget fails the run with a structured error (everything
  already completed is safely in the store — rerun to resume).  A fleet
  with no live member fails immediately under static membership, and
  after ``dead_fleet_grace`` seconds under an elastic source (a
  restarting daemon gets a window to rejoin).
* **Write-through.**  Completed cells land in the coordinator's local
  :class:`~repro.sim.store.ResultStore` the moment they arrive, so an
  interrupted fabric run resumes exactly like an interrupted local
  sweep, and the final results are bit-identical to a serial
  :func:`~repro.sim.sweep.run_sweep` of the same spec.

Every membership change lands in :class:`FabricResult` provenance:
``joined`` / ``readmitted`` / ``evicted`` address lists, the per-host
``transitions`` log, and ``completed_after_readmission`` (how many
cells a re-admitted host contributed after it came back).  Process-wide
transition counters (:func:`membership_counters`) mirror the
controller's kernel counters for dashboards.

Remote daemons keep their own ``--store`` write-back; the audited merge
tool (``python -m repro.sim merge-stores``,
:meth:`ResultStore.merge_from`) folds those stores back together
afterwards, with digest-collision conflict detection.

``python -m repro.sim fabric --hosts ... --grid`` is the CLI;
``--watch-hosts FILE`` follows a host file, ``--serve-membership ADDR``
opens the ``POST /join`` endpoint, and ``fabric stats --hosts ...``
federates the fleet's ``/stats`` counters.  The fault-injection
harness that proves all of this under real SIGSTOP/SIGKILL/blackhole
churn lives in :mod:`repro.sim.chaos`.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import sys
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..errors import SimulationError
from .client import (DEFAULT_BACKOFF, DEFAULT_MAX_BACKOFF, DEFAULT_RETRIES,
                     DEFAULT_TIMEOUT, AsyncEvalClient, TransportError,
                     _check_reply, _split_address)
from .engine import EvalTask
from .server import MAX_BODY_BYTES, MAX_HEADER_LINES
from .stats import SimStats
from .store import ResultStore, task_digest
from .sweep import SweepResult, SweepSpec

#: Hex digits of the task digest used for host routing (32 bits —
#: uniform far past any realistic fleet size).
PARTITION_PREFIX_HEX = 8

#: Default in-flight single-cell requests per host.
DEFAULT_WINDOW = 4

#: Default total attempts per cell before the run is declared failed.
DEFAULT_CELL_ATTEMPTS = 3

#: Default seconds between membership prober ticks.
DEFAULT_PROBE_INTERVAL = 1.0

#: Default health-probe timeout (seconds).  Deliberately much shorter
#: than the dispatch timeout: ``/healthz`` does no store I/O and no
#: compute, so a probe that does not answer quickly is evidence.
DEFAULT_PROBE_TIMEOUT = 2.0

#: Default seconds an *elastic* fleet may be entirely dead before the
#: run fails (a restarting daemon's window to rejoin).  Static fleets
#: fail immediately — nobody new can ever show up.
DEFAULT_DEAD_FLEET_GRACE = 15.0

#: Consecutive failed probes that turn ``suspect`` into ``dead``.
SUSPECT_PROBES_TO_DEAD = 2

# -- host states --------------------------------------------------------------

STATE_ALIVE = "alive"          #: dispatchable
STATE_SUSPECT = "suspect"      #: a probe failed; no new dispatches
STATE_DEAD = "dead"            #: unreachable; queue re-dispatched
STATE_REJOINING = "rejoining"  #: dead host answered a probe; re-admitting
STATE_EVICTED = "evicted"      #: removed from the membership source

HOST_STATES = (STATE_ALIVE, STATE_SUSPECT, STATE_DEAD, STATE_REJOINING,
               STATE_EVICTED)

# -- membership transition counters ------------------------------------------

#: Process-wide membership transition counters, for dashboards and the
#: membership tests (the fabric analogue of the controller's kernel
#: counters).  Coordinators may run on worker threads driven from sync
#: wrappers while a dashboard thread reads the totals, and ``+=`` on a
#: dict entry is not atomic under free-threaded execution — every
#: access holds ``_MEMBERSHIP_LOCK``.
# staticcheck: guarded-by[_MEMBERSHIP_LOCK, reads]
_MEMBERSHIP_COUNTERS: Dict[str, int] = {
    "admitted": 0,     # hosts joining mid-run (membership source)
    "suspected": 0,    # alive -> suspect (failed probe)
    "recovered": 0,    # suspect -> alive (probe answered again)
    "died": 0,         # -> dead (probes or a dispatch transport failure)
    "readmitted": 0,   # dead -> rejoining (health check passed)
    "evicted": 0,      # -> evicted (removed from the membership source)
}

#: Guards every access of ``_MEMBERSHIP_COUNTERS``.
_MEMBERSHIP_LOCK = threading.Lock()

# A fork while some thread holds the counter lock would leave the
# child's inherited copy locked forever; give the child a fresh one.
os.register_at_fork(
    after_in_child=lambda: globals().update(
        _MEMBERSHIP_LOCK=threading.Lock()))


def membership_counters() -> Dict[str, int]:
    """Snapshot of the membership transition counters (this process)."""
    with _MEMBERSHIP_LOCK:
        return dict(_MEMBERSHIP_COUNTERS)


def reset_membership_counters() -> None:
    """Zero the membership transition counters (tests, dashboards)."""
    with _MEMBERSHIP_LOCK:
        for key in _MEMBERSHIP_COUNTERS:
            _MEMBERSHIP_COUNTERS[key] = 0


def _count_membership(kind: str) -> None:
    with _MEMBERSHIP_LOCK:
        _MEMBERSHIP_COUNTERS[kind] = _MEMBERSHIP_COUNTERS.get(kind, 0) + 1


# -- partitioning -------------------------------------------------------------


def partition_index(task: EvalTask, num_partitions: int) -> int:
    """The partition one cell routes to (digest-prefix modulo)."""
    return int(task_digest(task)[:PARTITION_PREFIX_HEX], 16) % num_partitions


def partition_tasks(tasks: Sequence[EvalTask],
                    num_partitions: int) -> List[List[EvalTask]]:
    """Split cells into ``num_partitions`` deterministic partitions.

    Every cell lands in exactly one partition (a disjoint cover — the
    property the fabric tests pin), order within a partition follows
    the input order, and the assignment depends only on the task digest
    — the same spec partitions identically on every coordinator.
    """
    if num_partitions < 1:
        raise SimulationError("need at least one partition")
    parts: List[List[EvalTask]] = [[] for _ in range(num_partitions)]
    for task in tasks:
        parts[partition_index(task, num_partitions)].append(task)
    return parts


# -- membership sources -------------------------------------------------------


class MembershipSource:
    """Where the coordinator learns the fleet's addresses.

    ``hosts()`` returns the *current* membership (called at launch and
    on every prober tick for elastic sources).  ``elastic`` declares
    whether membership can change mid-run: elastic sources get mid-run
    join/evict handling and the ``dead_fleet_grace`` rejoin window;
    static ones keep the PR 8 fail-fast semantics.
    """

    elastic = False

    def hosts(self) -> List[str]:
        raise NotImplementedError

    async def start(self) -> None:
        """Bind any coordinator-side listeners (idempotent)."""

    async def stop(self) -> None:
        """Release anything :meth:`start` acquired."""

    def describe(self) -> str:
        return type(self).__name__


class StaticMembership(MembershipSource):
    """The PR 8 behaviour: a host list frozen at launch."""

    elastic = False

    def __init__(self, hosts: Sequence[str]) -> None:
        self._hosts = list(dict.fromkeys(hosts))

    def hosts(self) -> List[str]:
        return list(self._hosts)

    def describe(self) -> str:
        return f"static ({len(self._hosts)} hosts)"


class HostFileMembership(MembershipSource):
    """A watched host file: one address per line, ``#`` comments.

    Rewriting the file mid-run adds (join) or removes (evict) fleet
    members on the next prober tick.  A missing or unreadable file
    reads as an empty fleet — rewriting it empty is the operator's
    "abort this fleet" signal, and the run fails with the structured
    whole-fleet-dead error (completed cells stay checkpointed in the
    local store).
    """

    elastic = True

    def __init__(self, path: Any) -> None:
        self.path = Path(path)

    def hosts(self) -> List[str]:
        try:
            text = self.path.read_text()
        except OSError:
            return []
        hosts = []
        for line in text.splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                hosts.append(line)
        return list(dict.fromkeys(hosts))

    def describe(self) -> str:
        return f"host file {self.path}"


class MembershipEndpoint(MembershipSource):
    """A coordinator-side HTTP endpoint new daemons announce to.

    ``POST /join`` with ``{"host": "http://host:port"}`` admits a host
    mid-run (the next prober tick hands it a repartitioned share of the
    unstarted remainder); ``GET /membership`` reports the current
    addresses and, while a run is active, each host's state.  Wraps an
    optional ``base`` source (static list or host file), so a fleet can
    combine a seed list with dynamic joins; hosts announced via the
    endpoint are never evicted by the base source shrinking.
    """

    elastic = True

    def __init__(self, base: Optional[MembershipSource] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.base = base
        self.host = host
        self.port = port
        self._joined: List[str] = []
        self._server: Optional[asyncio.AbstractServer] = None
        #: Set by the active run: () -> {address: state} for
        #: ``GET /membership``.
        self.state_reporter: Optional[Callable[[], Dict[str, str]]] = None
        #: Called with the bound address once the listener is up (the
        #: CLI prints it — with ``port=0`` nothing else knows it).
        self.on_ready: Optional[Callable[[str], None]] = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def hosts(self) -> List[str]:
        base = self.base.hosts() if self.base is not None else []
        return list(dict.fromkeys([*base, *self._joined]))

    def describe(self) -> str:
        inner = f" + {self.base.describe()}" if self.base is not None else ""
        return f"join endpoint {self.address}{inner}"

    async def start(self) -> None:
        if self.base is not None:
            await self.base.start()
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port, limit=MAX_BODY_BYTES)
            self.port = self._server.sockets[0].getsockname()[1]
            if self.on_ready is not None:
                self.on_ready(self.address)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.base is not None:
            await self.base.stop()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """One minimal HTTP/1.1 exchange (``Connection: close``)."""
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                status, payload = 400, {"ok": False,
                                        "error": "malformed request line"}
            else:
                method, target = parts[0], parts[1].split("?", 1)[0]
                headers: Dict[str, str] = {}
                header_lines = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    header_lines += 1
                    if header_lines > MAX_HEADER_LINES:
                        return
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > MAX_BODY_BYTES:
                    status, payload = 413, {"ok": False,
                                            "error": "bad Content-Length"}
                else:
                    body = await reader.readexactly(length) if length else b""
                    status, payload = self._route(method, target, body)
            data = json.dumps(payload).encode("utf-8")
            reason = "OK" if status == 200 else "Error"
            head = (f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: close\r\n\r\n").encode("latin-1")
            writer.write(head + data)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str, body: bytes):
        if path == "/membership" and method == "GET":
            states = self.state_reporter() if self.state_reporter else {}
            return 200, {"ok": True, "hosts": self.hosts(), "states": states}
        if path == "/join" and method == "POST":
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as error:
                return 400, {"ok": False,
                             "error": f"malformed JSON body: {error}"}
            address = payload.get("host") \
                if isinstance(payload, dict) else None
            if not isinstance(address, str) or not address.strip():
                return 400, {"ok": False,
                             "error": "body must be "
                                      '{"host": "http://host:port"}'}
            address = address.strip()
            joined = address not in self.hosts()
            if joined:
                self._joined.append(address)
            return 200, {"ok": True, "host": address, "joined": joined}
        return 404, {"ok": False,
                     "error": f"unknown route {method} {path}; routes: "
                              f"POST /join, GET /membership"}


def announce_join(coordinator: str, host: str,
                  timeout: float = 10.0) -> bool:
    """Announce ``host`` to a coordinator's :class:`MembershipEndpoint`.

    The call a freshly provisioned daemon (or its supervisor) makes to
    enter a run in flight.  Returns ``True`` if the host was newly
    admitted, ``False`` if it was already a member; raises
    :class:`TransportError` if the coordinator is unreachable.
    """
    transport, target = _split_address(coordinator)
    if transport != "http":
        raise SimulationError(
            f"membership endpoint {coordinator!r} must be http://host:port")
    endpoint_host, endpoint_port = target
    connection = http.client.HTTPConnection(endpoint_host, endpoint_port,
                                            timeout=timeout)
    try:
        body = json.dumps({"host": host}).encode()
        try:
            connection.request("POST", "/join", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            raise TransportError(
                f"membership endpoint {coordinator} unreachable: "
                f"{error}") from error
        try:
            reply = json.loads(raw)
        except json.JSONDecodeError as error:
            raise SimulationError(
                f"malformed membership endpoint response: {error}") \
                from error
        return bool(_check_reply(reply, response.status).get("joined"))
    finally:
        connection.close()


# -- results ------------------------------------------------------------------


@dataclass
class FabricResult:
    """A finished fabric run: results plus dispatch provenance."""

    spec: SweepSpec
    results: Dict[EvalTask, SimStats]
    store_hits: int                  #: cells served by the local store
    completed: int                   #: cells evaluated by the fleet
    stolen: int                      #: cells run off their home partition
    redispatched: int                #: cells re-queued after a failure
    dead_hosts: List[str] = field(default_factory=list)
    per_host: Dict[str, int] = field(default_factory=dict)
    #: Hosts admitted mid-run via the membership source.
    joined: List[str] = field(default_factory=list)
    #: Dead hosts re-admitted after answering health checks again.
    readmitted: List[str] = field(default_factory=list)
    #: Hosts removed because the membership source dropped them.
    evicted: List[str] = field(default_factory=list)
    #: Per-host state-transition log, e.g.
    #: ``"alive→suspect (health probe failed)"``.
    transitions: Dict[str, List[str]] = field(default_factory=dict)
    #: Cells each re-admitted host completed *after* it came back.
    completed_after_readmission: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """Flat export rows, same shape as a local sweep's."""
        return SweepResult(self.spec, self.results,
                           self.store_hits, self.completed).rows()

    def describe(self) -> str:
        hosts = ", ".join(f"{host}={count}"
                          for host, count in self.per_host.items())
        line = (f"{len(self.results)} cells ({self.store_hits} local store "
                f"hits, {self.completed} remote: {hosts}); "
                f"{self.stolen} stolen, {self.redispatched} re-dispatched")
        if self.dead_hosts:
            line += f"; dead hosts: {', '.join(self.dead_hosts)}"
        if self.joined:
            line += f"; joined: {', '.join(self.joined)}"
        if self.readmitted:
            line += f"; readmitted: {', '.join(self.readmitted)}"
        if self.evicted:
            line += f"; evicted: {', '.join(self.evicted)}"
        return line


# -- the coordinator ----------------------------------------------------------


class _HostState:
    """One fleet member: its clients, its partition, its liveness."""

    __slots__ = ("address", "client", "probe", "pending", "state",
                 "completed", "probe_failures", "workers",
                 "readmission_baseline")

    def __init__(self, address: str, client: AsyncEvalClient,
                 probe: AsyncEvalClient) -> None:
        self.address = address
        self.client = client
        self.probe = probe
        self.pending: "deque[EvalTask]" = deque()
        self.state = STATE_ALIVE
        self.completed = 0
        self.probe_failures = 0
        self.workers: Set["asyncio.Task"] = set()
        #: ``completed`` at the moment of the last readmission, so the
        #: provenance can report post-rejoin contribution.
        self.readmission_baseline: Optional[int] = None


class _FabricRun:
    """Shared dispatcher state for one fabric execution.

    Everything here mutates on the event loop only, so the deques and
    the membership map need no locking; ``wakeup`` is the notification
    channel (new work queued, a cell completed, a state changed) and
    ``done`` latches completion or failure.
    """

    def __init__(self, *, membership: MembershipSource,
                 addresses: Sequence[str], missing: List[EvalTask],
                 store: Optional[ResultStore], latencies: bool,
                 cell_attempts: int, backoff: float, max_backoff: float,
                 timeout: float, retries: int,
                 probe_interval: float, probe_timeout: float,
                 dead_fleet_grace: float,
                 on_result: Optional[Callable[[EvalTask, SimStats], None]],
                 on_membership: Optional[Callable[[str, str, str, str],
                                                  None]]) -> None:
        self.membership = membership
        self.store = store
        self.latencies = latencies
        self.cell_attempts = max(1, cell_attempts)
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.timeout = timeout
        self.retries = retries
        self.probe_interval = max(0.01, probe_interval)
        self.probe_timeout = probe_timeout
        self.dead_fleet_grace = dead_fleet_grace
        self.on_result = on_result
        self.on_membership = on_membership
        self.hosts: Dict[str, _HostState] = {}
        self.overflow: "deque[EvalTask]" = deque()
        self.attempts: Dict[EvalTask, int] = {}
        self.results: Dict[EvalTask, SimStats] = {}
        self.remaining = len(missing)
        self.stolen = 0
        self.redispatched = 0
        self.failure: Optional[SimulationError] = None
        self.joined: List[str] = []
        self.readmitted: List[str] = []
        self.evicted: List[str] = []
        self.transitions: Dict[str, List[str]] = {}
        self.wakeup = asyncio.Event()
        self.done = asyncio.Event()
        self._window = 1
        self._requeues: Set["asyncio.Task"] = set()
        self._workers: Set["asyncio.Task"] = set()
        self._fleet_dead_since: Optional[float] = None
        for address in addresses:
            self._add_host(address)
        initial = list(self.hosts.values())
        for part, host in zip(partition_tasks(missing, len(initial)),
                              initial):
            host.pending.extend(part)

    # -- membership ---------------------------------------------------------

    def _add_host(self, address: str) -> _HostState:
        host = _HostState(
            address,
            AsyncEvalClient(address, timeout=self.timeout,
                            retries=self.retries, backoff=self.backoff,
                            max_backoff=self.max_backoff),
            AsyncEvalClient(address, timeout=self.probe_timeout,
                            retries=0, backoff=self.backoff))
        self.hosts[address] = host
        return host

    def _note_transition(self, host: _HostState, old: str, new: str,
                         reason: str) -> None:
        self.transitions.setdefault(host.address, []).append(
            f"{old}→{new} ({reason})")
        if self.on_membership is not None:
            self.on_membership(host.address, old, new, reason)

    def _set_state(self, host: _HostState, new: str, reason: str) -> None:
        old = host.state
        if old == new:
            return
        host.state = new
        counted = {STATE_SUSPECT: "suspected", STATE_DEAD: "died",
                   STATE_REJOINING: "readmitted",
                   STATE_EVICTED: "evicted"}.get(new)
        if new == STATE_ALIVE and old == STATE_SUSPECT:
            counted = "recovered"
        if counted is not None:
            _count_membership(counted)
        self._note_transition(host, old, new, reason)
        self.wakeup.set()

    def state_snapshot(self) -> Dict[str, str]:
        """``{address: state}`` — the ``GET /membership`` payload."""
        return {address: host.state
                for address, host in self.hosts.items()}

    def admit(self, address: str, reason: str) -> None:
        """A new host from the membership source: explicit handoff —
        re-partition the unstarted remainder, then put it to work."""
        host = self.hosts.get(address)
        if host is None:
            host = self._add_host(address)
            _count_membership("admitted")
            self.transitions.setdefault(address, []).append(
                f"(new)→{STATE_ALIVE} ({reason})")
            if self.on_membership is not None:
                self.on_membership(address, "(new)", STATE_ALIVE, reason)
        elif host.state == STATE_EVICTED:
            # Evicted then re-listed: same handoff as a fresh join.
            _count_membership("admitted")
            self._note_transition(host, STATE_EVICTED, STATE_ALIVE, reason)
            host.state = STATE_ALIVE
            host.probe_failures = 0
        else:
            return
        if address not in self.joined:
            self.joined.append(address)
        self._handoff()
        self._spawn_workers(host)
        self.wakeup.set()

    def _handoff(self) -> None:
        """Re-partition the *unstarted* remainder across the live
        fleet.  Only pending (never-dispatched) cells move — completed
        and in-flight cells stay where they are, so the result set is
        unaffected and stays bit-identical to a serial sweep."""
        live = [host for host in self.hosts.values()
                if host.state == STATE_ALIVE]
        if not live:
            return
        unstarted: List[EvalTask] = []
        for host in live:
            unstarted.extend(host.pending)
            host.pending.clear()
        for part, host in zip(partition_tasks(unstarted, len(live)), live):
            host.pending.extend(part)

    def evict(self, host: _HostState, reason: str) -> None:
        """The membership source dropped this host: drain its queue
        back to the shared pool and retire it for good."""
        if host.state == STATE_EVICTED:
            return
        while host.pending:
            self.overflow.append(host.pending.popleft())
            self.redispatched += 1
        self._set_state(host, STATE_EVICTED, reason)
        if host.address not in self.evicted:
            self.evicted.append(host.address)
        self._cancel_workers(host)
        self._check_fleet_dead()
        self.wakeup.set()

    def readmit(self, host: _HostState) -> None:
        """A dead host answered its health check: re-admit it.  No
        handoff — its old queue was already re-dispatched — but its
        fresh workers steal from the largest remainder immediately."""
        self._set_state(host, STATE_REJOINING, "health check passed")
        host.probe_failures = 0
        host.readmission_baseline = host.completed
        if host.address not in self.readmitted:
            self.readmitted.append(host.address)
        self._set_state(host, STATE_ALIVE,
                        "re-admitted; eligible for work-stealing")
        self._fleet_dead_since = None
        self._spawn_workers(host)
        self.wakeup.set()

    def mark_dead(self, host: _HostState, reason: str) -> None:
        """A host stopped answering: its unfinished partition re-enters
        the shared queue for the survivors."""
        if host.state in (STATE_DEAD, STATE_EVICTED):
            return
        while host.pending:
            self.overflow.append(host.pending.popleft())
            self.redispatched += 1
        self._set_state(host, STATE_DEAD, reason)
        self._cancel_workers(host)
        self._check_fleet_dead()
        self.wakeup.set()

    def _cancel_workers(self, host: _HostState) -> None:
        """Abort a dead host's in-flight dispatches (each re-queues its
        cell on the way out).  The caller may *be* one of this host's
        workers — never cancel the current task."""
        current = asyncio.current_task()
        for worker in list(host.workers):
            if worker is not current:
                worker.cancel()

    def _check_fleet_dead(self) -> None:
        """No live member left?  Fail fast under static membership;
        give an elastic fleet ``dead_fleet_grace`` seconds to rejoin
        (checked again on every prober tick)."""
        if self.remaining <= 0 or self.failure is not None:
            return
        live = [host for host in self.hosts.values()
                if host.state in (STATE_ALIVE, STATE_SUSPECT,
                                  STATE_REJOINING)]
        if live:
            self._fleet_dead_since = None
            return
        if not self.membership.elastic:
            self._fail_fleet_dead()
            return
        if not self.membership.hosts():
            # The source itself says the fleet is empty (host file
            # rewritten empty): nobody is coming back — fail now.
            self._fail_fleet_dead()
            return
        now = asyncio.get_running_loop().time()
        if self._fleet_dead_since is None:
            self._fleet_dead_since = now
        elif now - self._fleet_dead_since >= self.dead_fleet_grace:
            self._fail_fleet_dead()

    def _fail_fleet_dead(self) -> None:
        dead = [address for address, host in self.hosts.items()
                if host.state in (STATE_DEAD, STATE_EVICTED)]
        self.fail(SimulationError(
            f"fabric stalled with {self.remaining} cells unfinished; "
            f"dead hosts: {dead or 'none'} — completed cells are in "
            f"the local store, rerun to resume"))

    # -- the prober ---------------------------------------------------------

    async def _probe_host(self, host: _HostState) -> None:
        if host.state == STATE_EVICTED:
            return
        ok = await host.probe.ping()
        if host.state == STATE_EVICTED:
            return    # evicted while the probe was in flight
        if ok:
            host.probe_failures = 0
            if host.state == STATE_SUSPECT:
                self._set_state(host, STATE_ALIVE, "probe answered again")
                self.wakeup.set()
            elif host.state == STATE_DEAD:
                self.readmit(host)
        else:
            host.probe_failures += 1
            if host.state == STATE_ALIVE:
                self._set_state(host, STATE_SUSPECT, "health probe failed")
            elif host.state == STATE_SUSPECT \
                    and host.probe_failures >= SUSPECT_PROBES_TO_DEAD:
                self.mark_dead(host, f"{host.probe_failures} consecutive "
                                     f"health probes failed")

    def _apply_membership(self) -> None:
        """Fold the source's current host set into the fleet (elastic
        sources only; applied between dispatch windows — each prober
        tick — never mid-cell)."""
        if not self.membership.elastic:
            return
        current = list(dict.fromkeys(self.membership.hosts()))
        listed = set(current)
        for address in current:
            host = self.hosts.get(address)
            if host is None or host.state == STATE_EVICTED:
                self.admit(address, f"joined via "
                                    f"{self.membership.describe()}")
        for address, host in list(self.hosts.items()):
            if address not in listed and host.state != STATE_EVICTED:
                self.evict(host, "removed from "
                                 f"{self.membership.describe()}")

    async def _prober(self) -> None:
        """The membership heartbeat: apply source changes, probe every
        host, and run the dead-fleet clock."""
        while self.failure is None and self.remaining > 0:
            await asyncio.sleep(self.probe_interval)
            self._apply_membership()
            if self.failure is not None or self.remaining <= 0:
                return
            await asyncio.gather(*(
                self._probe_host(host)
                for host in list(self.hosts.values())
                if host.state != STATE_EVICTED))
            self._check_fleet_dead()

    # -- scheduling ---------------------------------------------------------

    def next_task(self, host: _HostState):
        """Next cell for one worker: re-dispatch queue first, then the
        host's own partition, then steal from the largest remainder.
        Cells completed elsewhere in the meantime (a duplicate from a
        timed-out attempt) are dropped, never re-run."""
        while self.overflow:
            task = self.overflow.popleft()
            if task not in self.results:
                return task, False
        while host.pending:
            task = host.pending.popleft()
            if task not in self.results:
                return task, False
        victim = None
        for other in self.hosts.values():
            if other is host or not other.pending:
                continue
            if other.state not in (STATE_ALIVE, STATE_SUSPECT):
                continue
            if victim is None or len(other.pending) > len(victim.pending):
                victim = other
        if victim is not None:
            # Steal from the tail: the head cells are about to be
            # pulled by the victim's own workers.
            while victim.pending:
                task = victim.pending.pop()
                if task not in self.results:
                    return task, True
        return None, False

    def fail(self, error: SimulationError) -> None:
        if self.failure is None:
            self.failure = error
        self.wakeup.set()
        self.done.set()

    def cell_failed(self, task: EvalTask, error: SimulationError) -> None:
        """One failed attempt: consume budget, back off, re-queue."""
        attempts = self.attempts.get(task, 0) + 1
        self.attempts[task] = attempts
        if attempts >= self.cell_attempts:
            self.fail(SimulationError(
                f"fabric cell ({task.describe()}) failed after "
                f"{attempts} attempts: {error}"))
            return
        delay = min(self.backoff * (2 ** (attempts - 1)), self.max_backoff)
        requeue = asyncio.ensure_future(
            self._requeue_after_backoff(task, delay))
        self._requeues.add(requeue)
        requeue.add_done_callback(self._requeues.discard)

    async def _requeue_after_backoff(self, task: EvalTask,
                                     delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        self.overflow.append(task)
        self.redispatched += 1
        self.wakeup.set()

    # -- the worker loop ----------------------------------------------------

    def _spawn_workers(self, host: _HostState) -> None:
        """``window`` in-flight slots for one (re-)admitted host."""
        for _ in range(self._window):
            worker = asyncio.ensure_future(self.worker(host))
            self._workers.add(worker)
            host.workers.add(worker)
            worker.add_done_callback(self._workers.discard)
            worker.add_done_callback(host.workers.discard)

    async def worker(self, host: _HostState) -> None:
        """One in-flight slot on one host.  Exits when the run
        completes or fails, or the host leaves the dispatchable states
        (a re-admission spawns fresh workers)."""
        while self.failure is None and self.remaining > 0 \
                and host.state in (STATE_ALIVE, STATE_SUSPECT):
            if host.state != STATE_ALIVE:
                # Suspect: hold new dispatches until a probe verdict.
                await self._pause()
                continue
            task, stolen = self.next_task(host)
            if task is None:
                # Nothing dispatchable right now (cells in flight
                # elsewhere, or a backoff pending): wait for a wakeup,
                # with a poll floor as a lost-wakeup safety net.
                await self._pause()
                continue
            try:
                stats = await host.client.eval_cell(
                    task, latencies=self.latencies)
            except TransportError as error:
                # The client's own retry budget is spent: the host is
                # unreachable.  Its queue re-enters the shared pool and
                # this in-flight cell consumes one attempt.
                self.mark_dead(host, f"transport failure: {error}")
                self.cell_failed(task, error)
                continue
            except SimulationError as error:
                # Structured server-side failure (a crashed worker, a
                # restarted pool): the host is alive — retry the cell
                # elsewhere within its budget.
                self.cell_failed(task, error)
                continue
            except asyncio.CancelledError:
                # Cancelled with a cell in flight (the prober declared
                # this host dead, or it was evicted): the attempt is
                # void — re-queue it unless the run is already over or
                # a duplicate completed it.
                if self.failure is None and self.remaining > 0 \
                        and task not in self.results:
                    self.cell_failed(task, TransportError(
                        f"cell in flight when host {host.address} was "
                        f"removed"))
                raise
            if task in self.results:
                # A duplicate completion: the cell was re-queued while
                # this attempt was still in flight and another host got
                # there first.  Same digest, same bits — drop it.
                self.wakeup.set()
                continue
            if stolen:
                self.stolen += 1
            host.completed += 1
            self.results[task] = stats
            self.remaining -= 1
            if self.store is not None:
                self.store.put(task, stats, latencies=self.latencies)
            if self.on_result is not None:
                self.on_result(task, stats)
            if self.remaining <= 0:
                self.done.set()
            self.wakeup.set()

    async def _pause(self) -> None:
        self.wakeup.clear()
        try:
            await asyncio.wait_for(self.wakeup.wait(), 0.05)
        except asyncio.TimeoutError:
            pass

    async def run(self, window: int) -> None:
        self._window = max(1, window)
        await self.membership.start()
        if isinstance(self.membership, MembershipEndpoint):
            self.membership.state_reporter = self.state_snapshot
        if self.remaining <= 0:
            self.done.set()
        for host in list(self.hosts.values()):
            self._spawn_workers(host)
        prober = asyncio.ensure_future(self._prober())
        try:
            await self.done.wait()
        finally:
            prober.cancel()
            for requeue in list(self._requeues):
                requeue.cancel()
            for worker in list(self._workers):
                worker.cancel()
            await asyncio.gather(prober, *self._requeues, *self._workers,
                                 return_exceptions=True)
            if isinstance(self.membership, MembershipEndpoint):
                self.membership.state_reporter = None
            await self.membership.stop()
        if self.failure is not None:
            raise self.failure
        if self.remaining > 0:
            # Unreachable by construction (done only latches on
            # completion or failure) — kept as a belt against a future
            # scheduling bug silently dropping cells.
            raise SimulationError(
                f"fabric stalled with {self.remaining} cells unfinished; "
                f"rerun to resume from the local store")


async def run_fabric_async(
    spec: SweepSpec,
    hosts: Optional[Sequence[str]] = None,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    window: int = DEFAULT_WINDOW,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    cell_attempts: int = DEFAULT_CELL_ATTEMPTS,
    latencies: bool = True,
    timeout: float = DEFAULT_TIMEOUT,
    on_result: Optional[Callable[[EvalTask, SimStats], None]] = None,
    membership: Optional[MembershipSource] = None,
    max_backoff: float = DEFAULT_MAX_BACKOFF,
    probe_interval: float = DEFAULT_PROBE_INTERVAL,
    probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
    dead_fleet_grace: float = DEFAULT_DEAD_FLEET_GRACE,
    on_membership: Optional[Callable[[str, str, str, str], None]] = None,
) -> FabricResult:
    """Execute a sweep across an elastic fleet of evaluation daemons.

    The fleet comes from ``hosts`` (client addresses —
    ``http://host:port`` or ``unix:///path`` — frozen for the run) or a
    ``membership`` source (pass exactly one); elastic sources
    (:class:`HostFileMembership`, :class:`MembershipEndpoint`) admit
    and evict hosts mid-run.  Cells already in the local ``store`` are
    served from disk when ``resume`` is true; the rest are partitioned
    by digest prefix and dispatched with ``window`` in-flight requests
    per host, work stealing, health-checked membership
    (``probe_interval`` / ``probe_timeout``), and failure re-dispatch
    (see the module docstring).  ``on_membership(address, old, new,
    reason)`` observes every state transition (the chaos tests key
    fault injection off it); ``latencies=False`` trims per-request
    samples from both the wire and the store write-through (archival
    mode).

    The final ``results`` are bit-identical to a serial
    :func:`~repro.sim.sweep.run_sweep` of the same spec — under
    membership churn too.
    """
    if membership is None:
        if hosts is None:
            raise SimulationError(
                "fabric needs hosts or a membership source")
        membership = StaticMembership(hosts)
    elif hosts is not None:
        raise SimulationError(
            "pass either hosts or a membership source, not both")
    addresses = list(dict.fromkeys(membership.hosts()))
    if not addresses:
        raise SimulationError("fabric needs at least one host")
    tasks = spec.tasks()
    cached: Dict[EvalTask, SimStats] = {}
    if store is not None and resume:
        cached = {task: hit for task, hit in store.get_many(tasks).items()
                  if hit is not None}
    missing = [task for task in tasks if task not in cached]
    run = _FabricRun(
        membership=membership, addresses=addresses, missing=missing,
        store=store, latencies=latencies, cell_attempts=cell_attempts,
        backoff=backoff, max_backoff=max_backoff, timeout=timeout,
        retries=retries, probe_interval=probe_interval,
        probe_timeout=probe_timeout, dead_fleet_grace=dead_fleet_grace,
        on_result=on_result, on_membership=on_membership)
    run.results.update(cached)
    await run.run(window)
    states = run.hosts
    readmitted = set(run.readmitted)
    return FabricResult(
        spec=spec,
        results=run.results,
        store_hits=len(cached),
        completed=sum(host.completed for host in states.values()),
        stolen=run.stolen,
        redispatched=run.redispatched,
        dead_hosts=[address for address, host in states.items()
                    if host.state == STATE_DEAD],
        per_host={address: host.completed
                  for address, host in states.items()},
        joined=list(run.joined),
        readmitted=list(run.readmitted),
        evicted=list(run.evicted),
        transitions={address: list(log)
                     for address, log in run.transitions.items()},
        completed_after_readmission={
            address: host.completed - (host.readmission_baseline or 0)
            for address, host in states.items() if address in readmitted},
    )


def run_fabric(spec: SweepSpec, hosts: Optional[Sequence[str]] = None,
               **kwargs: Any) -> FabricResult:
    """Synchronous wrapper over :func:`run_fabric_async`."""
    return asyncio.run(run_fabric_async(spec, hosts, **kwargs))


# -- federated stats ---------------------------------------------------------


async def federate_stats_async(hosts: Sequence[str],
                               timeout: float = 30.0,
                               retries: int = DEFAULT_RETRIES,
                               backoff: float = DEFAULT_BACKOFF
                               ) -> Dict[str, Any]:
    """Every host's ``/stats`` plus fleet-wide numeric totals.

    Unreachable hosts are reported (``{"error": ...}`` per host and an
    ``unreachable`` count), never raised — a dashboard poll must not
    die because one member is restarting.
    """
    addresses = list(dict.fromkeys(hosts))
    if not addresses:
        raise SimulationError("need at least one host")

    async def fetch(address: str) -> Any:
        try:
            return await AsyncEvalClient(address, timeout=timeout,
                                         retries=retries,
                                         backoff=backoff).stats()
        except SimulationError as error:
            return {"error": str(error)}

    snapshots = await asyncio.gather(*(fetch(a) for a in addresses))
    per_host = dict(zip(addresses, snapshots))
    totals: Dict[str, Any] = {}
    kernel_totals: Dict[str, int] = {}
    reachable = 0
    for snapshot in snapshots:
        if "error" in snapshot:
            continue
        reachable += 1
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
        for key, value in (snapshot.get("kernel") or {}).items():
            if isinstance(value, int) and not isinstance(value, bool):
                kernel_totals[key] = kernel_totals.get(key, 0) + value
    if kernel_totals:
        totals["kernel"] = kernel_totals
    return {
        "hosts": per_host,
        "totals": totals,
        "reachable": reachable,
        "unreachable": len(addresses) - reachable,
    }


def federate_stats(hosts: Sequence[str], **kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper over :func:`federate_stats_async`."""
    return asyncio.run(federate_stats_async(hosts, **kwargs))


# -- CLI ---------------------------------------------------------------------


def _parse_hosts(values: Optional[List[str]]) -> List[str]:
    hosts: List[str] = []
    for value in values or []:
        hosts.extend(part.strip() for part in value.split(",")
                     if part.strip())
    return list(dict.fromkeys(hosts))


def _parse_bind(value: str) -> "tuple[str, int]":
    """``HOST:PORT``, ``:PORT`` or ``PORT`` → ``(host, port)``."""
    host, _, port = value.rpartition(":")
    host = host or "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise SimulationError(
            f"bad bind address {value!r}; use HOST:PORT, :PORT or PORT"
        ) from None


def _stats_main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sim fabric stats",
        description="Federate /stats across a fleet of evaluation "
                    "daemons.",
    )
    parser.add_argument("--hosts", required=True, action="append",
                        metavar="ADDR[,ADDR...]",
                        help="daemon addresses (repeatable or "
                             "comma-separated)")
    parser.add_argument("--timeout", type=float, default=30.0)
    args = parser.parse_args(argv)
    hosts = _parse_hosts(args.hosts)
    if not hosts:
        parser.error("--hosts resolved to an empty set")
    report = federate_stats(hosts, timeout=args.timeout)
    for address, snapshot in report["hosts"].items():
        if "error" in snapshot:
            print(f"{address}: unreachable ({snapshot['error']})")
            continue
        print(f"{address}: computed {snapshot.get('computed', 0)}, "
              f"store_hits {snapshot.get('store_hits', 0)}, "
              f"lru_hits {snapshot.get('lru_hits', 0)}, "
              f"queries {snapshot.get('queries', 0)}, "
              f"errors {snapshot.get('errors', 0)}")
    totals = report["totals"]
    print(f"fleet ({report['reachable']}/{len(report['hosts'])} "
          f"reachable): " + ", ".join(
              f"{key} {value}" for key, value in sorted(totals.items())
              if not isinstance(value, dict)))
    return 0 if report["unreachable"] == 0 else 1


def fabric_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim fabric`` — run a sweep across a fleet (or
    ``fabric stats`` — federate the fleet's counters)."""
    import argparse

    from .factory import known_architectures
    from .sweep import run_sweep, write_csv, write_json
    from .tracegen import SPEC_WORKLOADS, WORKLOAD_NAMES

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.sim fabric",
        description="Partition a sweep across remote evaluation daemons "
                    "(digest-prefix routing, bounded in-flight windows, "
                    "work stealing, health-checked elastic membership, "
                    "failure re-dispatch) with local result-store "
                    "write-through.  "
                    "'fabric stats --hosts ...' federates /stats.",
    )
    parser.add_argument("--hosts", action="append", default=None,
                        metavar="ADDR[,ADDR...]",
                        help="daemon addresses (repeatable or "
                             "comma-separated); static membership")
    parser.add_argument("--watch-hosts", default=None, metavar="FILE",
                        help="watched host file (one address per line, "
                             "# comments): rewrite it mid-run to add or "
                             "remove fleet members")
    parser.add_argument("--serve-membership", default=None,
                        metavar="ADDR",
                        help="open a coordinator join endpoint on "
                             "HOST:PORT (POST /join admits a daemon "
                             "mid-run, GET /membership reports states)")
    parser.add_argument("--arch", default="ALL",
                        choices=known_architectures() + ("ALL",))
    parser.add_argument("--workloads", default=None,
                        help="'spec' (default), 'all', or a "
                             "comma-separated list")
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queue-depths", default=None,
                        metavar="D[,D...]",
                        help="queue-depth axis (integers; 'default' "
                             "keeps the per-architecture default)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="local write-through result store "
                             "(resumable)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore cells already in --store")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="in-flight requests per host")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        help="transport retries per request before a "
                             "host is declared dead")
    parser.add_argument("--backoff", type=float, default=DEFAULT_BACKOFF,
                        help="base retry/re-dispatch backoff (seconds)")
    parser.add_argument("--max-backoff", type=float,
                        default=DEFAULT_MAX_BACKOFF,
                        help="ceiling on the exponential retry/"
                             "re-dispatch backoff (seconds)")
    parser.add_argument("--cell-attempts", type=int,
                        default=DEFAULT_CELL_ATTEMPTS,
                        help="attempts per cell before the run fails")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                        help="per-dispatch client timeout (seconds)")
    parser.add_argument("--probe-interval", type=float,
                        default=DEFAULT_PROBE_INTERVAL,
                        help="seconds between membership health probes")
    parser.add_argument("--probe-timeout", type=float,
                        default=DEFAULT_PROBE_TIMEOUT,
                        help="health probe timeout (seconds)")
    parser.add_argument("--dead-fleet-grace", type=float,
                        default=DEFAULT_DEAD_FLEET_GRACE,
                        help="seconds an elastic fleet may be entirely "
                             "dead before the run fails")
    parser.add_argument("--no-latencies", action="store_true",
                        help="archival mode: trim per-request samples "
                             "from the wire and the store")
    parser.add_argument("--export", choices=("csv", "json"), default=None)
    parser.add_argument("--export-path", default="-", metavar="PATH")
    args = parser.parse_args(argv)

    hosts = _parse_hosts(args.hosts)
    if hosts and args.watch_hosts:
        parser.error("--hosts and --watch-hosts are mutually exclusive "
                     "(seed the host file instead)")
    if not hosts and not args.watch_hosts:
        parser.error("need --hosts or --watch-hosts")
    if args.window < 1:
        parser.error("--window must be >= 1")
    if args.cell_attempts < 1:
        parser.error("--cell-attempts must be >= 1")
    if args.workloads in (None, "spec"):
        workloads = sorted(SPEC_WORKLOADS)
    elif args.workloads == "all":
        workloads = list(WORKLOAD_NAMES)
    else:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
    if not workloads:
        parser.error("--workloads resolved to an empty set")
    queue_depths: List[Optional[int]] = [None]
    if args.queue_depths is not None:
        queue_depths = []
        for part in args.queue_depths.split(","):
            part = part.strip()
            if not part:
                continue
            if part == "default":
                queue_depths.append(None)
                continue
            try:
                queue_depths.append(int(part))
            except ValueError:
                parser.error(f"--queue-depths entry {part!r} is not an "
                             f"integer (or 'default')")
        if not queue_depths:
            parser.error("--queue-depths resolved to an empty set")
    archs = known_architectures() if args.arch == "ALL" else (args.arch,)
    table = sys.stderr if (args.export and args.export_path == "-") \
        else sys.stdout
    try:
        spec = SweepSpec(architectures=tuple(archs),
                         workloads=tuple(workloads),
                         num_requests=(args.requests,),
                         seeds=(args.seed,),
                         queue_depths=tuple(queue_depths))
        store = ResultStore(args.store) if args.store else None
        membership: Optional[MembershipSource] = None
        if args.watch_hosts:
            membership = HostFileMembership(args.watch_hosts)
        if args.serve_membership is not None:
            bind_host, bind_port = _parse_bind(args.serve_membership)
            base = membership if membership is not None \
                else StaticMembership(hosts)
            membership = MembershipEndpoint(base=base, host=bind_host,
                                            port=bind_port)

            def announce_endpoint(address: str) -> None:
                print(f"membership   : join endpoint {address}",
                      file=table, flush=True)

            membership.on_ready = announce_endpoint
    except SimulationError as error:
        parser.error(str(error))
    except OSError as error:
        parser.error(f"result store {args.store!r} unusable: {error}")
    initial = membership.hosts() if membership is not None else hosts
    print(f"fabric       : {len(initial)} hosts, {spec.num_cells} cells "
          f"(window {args.window}/host, {args.cell_attempts} attempts/"
          f"cell)", file=table)

    def report_transition(address: str, old: str, new: str,
                          reason: str) -> None:
        print(f"membership   : {address} {old}→{new} ({reason})",
              file=table, flush=True)

    try:
        result = run_fabric(spec, hosts if membership is None else None,
                            store=store, membership=membership,
                            resume=not args.no_resume, window=args.window,
                            retries=args.retries, backoff=args.backoff,
                            max_backoff=args.max_backoff,
                            cell_attempts=args.cell_attempts,
                            timeout=args.timeout,
                            probe_interval=args.probe_interval,
                            probe_timeout=args.probe_timeout,
                            dead_fleet_grace=args.dead_fleet_grace,
                            latencies=not args.no_latencies,
                            on_membership=report_transition)
    except SimulationError as error:
        message = f"error: {error}"
        if args.store:
            message += (f"\ncompleted cells are checkpointed in "
                        f"{args.store}; rerun to continue")
        print(message, file=sys.stderr)
        return 1
    print(f"dispatch     : {result.describe()}", file=table)
    for address, log in result.transitions.items():
        print(f"  {address}: {'; '.join(log)}", file=table)
    if args.export:
        writer = write_csv if args.export == "csv" else write_json
        if args.export_path == "-":
            writer(result.rows(), sys.stdout)
        else:
            with open(args.export_path, "w", newline="") as stream:
                writer(result.rows(), stream)
    return 0
