"""Geometry design-space sweep (Fig. 4) and design-point selection."""

import pytest

from repro.device.sweep import geometry_sweep, select_design_point
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def sweep(gst_module):
    return geometry_sweep(
        gst_module,
        widths_m=[440e-9, 480e-9, 520e-9],
        thicknesses_m=[10e-9, 20e-9, 30e-9],
    )


@pytest.fixture(scope="module")
def gst_module():
    from repro.materials import get_material
    return get_material("GST")


class TestSweep:
    def test_grid_size(self, sweep):
        assert len(sweep) == 9

    def test_contrasts_bounded(self, sweep):
        for point in sweep:
            assert 0.0 <= point.transmission_contrast <= 1.0
            assert 0.0 <= point.absorption_contrast <= 1.0

    def test_thickness_dominates_width(self, sweep):
        """Fig. 4's observation: thickness moves the contrast, width barely."""
        by_thickness = {}
        for p in sweep:
            by_thickness.setdefault(p.thickness_m, []).append(
                p.absorption_contrast)
        thickness_spread = (max(max(v) for v in by_thickness.values())
                            - min(min(v) for v in by_thickness.values()))
        width_spread = max(
            max(v) - min(v) for v in by_thickness.values())
        assert thickness_spread > 3 * width_spread

    def test_empty_sweep_rejected(self, gst_module):
        with pytest.raises(ConfigError):
            geometry_sweep(gst_module, widths_m=[], thicknesses_m=[20e-9])


class TestSelection:
    def test_selected_point_matches_paper(self, sweep):
        """The joint-contrast criterion under the thermal cap lands on the
        paper's 20 nm film."""
        chosen = select_design_point(sweep)
        assert chosen.thickness_m == pytest.approx(20e-9)

    def test_thickness_cap_enforced(self, sweep):
        chosen = select_design_point(sweep, max_thickness_m=25e-9)
        assert chosen.thickness_m <= 25e-9

    def test_cap_excluding_everything_raises(self, sweep):
        with pytest.raises(ConfigError):
            select_design_point(sweep, max_thickness_m=1e-9)

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigError):
            select_design_point([])
