"""Open-page vs closed-page DRAM controller policy."""

import dataclasses

import pytest

from repro.baselines.dram import dram_config
from repro.errors import ConfigError
from repro.sim import MainMemorySimulator
from repro.sim.devices import RowBufferTiming
from repro.sim.factory import build_dram_device


def ddr3(policy: str):
    return build_dram_device(
        dataclasses.replace(dram_config("2D_DDR3"), page_policy=policy))


class TestTiming:
    def test_closed_page_never_hits(self):
        timing = RowBufferTiming(14.0, 14.0, 14.0, 15.0, 8192,
                                 page_policy="closed")
        assert timing.service_ns(row_hit=True, is_read=True) \
            == timing.service_ns(row_hit=False, is_read=True) \
            == pytest.approx(28.0)

    def test_open_page_hit_cheaper(self):
        timing = RowBufferTiming(14.0, 14.0, 14.0, 15.0, 8192)
        assert timing.service_ns(True, True) == pytest.approx(14.0)
        assert timing.service_ns(False, True) == pytest.approx(42.0)

    def test_closed_cheaper_than_open_miss(self):
        """Closed page saves the precharge on the miss path."""
        open_page = RowBufferTiming(14.0, 14.0, 14.0, 15.0, 8192)
        closed = RowBufferTiming(14.0, 14.0, 14.0, 15.0, 8192,
                                 page_policy="closed")
        assert closed.service_ns(False, True) \
            < open_page.service_ns(False, True)

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RowBufferTiming(14.0, 14.0, 14.0, 15.0, 8192,
                            page_policy="adaptive")


class TestEndToEnd:
    def test_closed_page_registers_no_hits(self):
        stats = MainMemorySimulator(ddr3("closed")).run_workload(
            "libquantum", 2000)
        assert stats.row_hits == 0
        assert stats.row_misses == 2000

    def test_streaming_prefers_open_page(self):
        """libquantum's 92 % sequential traffic rewards open rows."""
        open_stats = MainMemorySimulator(ddr3("open")).run_workload(
            "libquantum", 2500)
        closed_stats = MainMemorySimulator(ddr3("closed")).run_workload(
            "libquantum", 2500)
        busy_open = open_stats.busy_time_ns / open_stats.num_requests
        busy_closed = closed_stats.busy_time_ns / closed_stats.num_requests
        assert busy_open < busy_closed

    def test_random_prefers_closed_page(self):
        """mcf's 5 %-sequential traffic rewards skipping the precharge."""
        open_stats = MainMemorySimulator(ddr3("open")).run_workload(
            "mcf", 2500)
        closed_stats = MainMemorySimulator(ddr3("closed")).run_workload(
            "mcf", 2500)
        busy_open = open_stats.busy_time_ns / open_stats.num_requests
        busy_closed = closed_stats.busy_time_ns / closed_stats.num_requests
        assert busy_closed < busy_open
