"""Memory organization algebra: banks, subarrays, rows, columns, bits.

The paper describes a bank of ``Nr x Nc`` OPCM cells divided into ``S``
subarrays of ``Mr x Mc`` cells with ``Nr = Sr * Mr`` and ``Nc = Sc * Mc``
(Section III.C).  COMET sets ``Sc = 1`` (every subarray spans the full
column width, Section III.E); the re-modeled COSMOS uses ``Sr = Sc = 512``
with 32 x 32 subarrays (Section IV.B).  Capacity is
``B x Nr x Nc x b`` bits across ``B`` banks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CometOrganizationSpec, comet_organization
from ..errors import ConfigError


@dataclass(frozen=True)
class MemoryOrganization:
    """A (B, Sr, Sc, Mr, Mc, b) photonic memory organization."""

    banks: int
    row_subarrays: int      # Sr
    col_subarrays: int      # Sc
    rows_per_subarray: int  # Mr
    cols_per_subarray: int  # Mc
    bits_per_cell: int      # b

    def __post_init__(self) -> None:
        for name in ("banks", "row_subarrays", "col_subarrays",
                     "rows_per_subarray", "cols_per_subarray", "bits_per_cell"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be at least 1")

    # -- constructors -----------------------------------------------------

    @classmethod
    def comet(cls, bits_per_cell: int = 4) -> "MemoryOrganization":
        """The paper's COMET organization for a bit density in {1, 2, 4}."""
        spec: CometOrganizationSpec = comet_organization(bits_per_cell)
        return cls(
            banks=spec.banks,
            row_subarrays=spec.subarrays_per_bank,
            col_subarrays=1,
            rows_per_subarray=spec.rows_per_subarray,
            cols_per_subarray=spec.cols_per_subarray,
            bits_per_cell=spec.bits_per_cell,
        )

    @classmethod
    def cosmos(cls) -> "MemoryOrganization":
        """The re-modeled COSMOS organization of Section IV.B.

        (B x Nr x Nc x b) = (16 x 16384 x 16384 x 2) with
        Sr x Mr = Sc x Mc = 512 x 32.
        """
        return cls(
            banks=16,
            row_subarrays=512,
            col_subarrays=512,
            rows_per_subarray=32,
            cols_per_subarray=32,
            bits_per_cell=2,
        )

    # -- derived sizes ------------------------------------------------------

    @property
    def rows_per_bank(self) -> int:
        """Nr = Sr * Mr."""
        return self.row_subarrays * self.rows_per_subarray

    @property
    def cols_per_bank(self) -> int:
        """Nc = Sc * Mc."""
        return self.col_subarrays * self.cols_per_subarray

    @property
    def subarrays_per_bank(self) -> int:
        return self.row_subarrays * self.col_subarrays

    @property
    def cells_per_subarray(self) -> int:
        return self.rows_per_subarray * self.cols_per_subarray

    @property
    def cells_per_bank(self) -> int:
        return self.rows_per_bank * self.cols_per_bank

    @property
    def capacity_bits(self) -> int:
        """B x Nr x Nc x b."""
        return self.banks * self.cells_per_bank * self.bits_per_cell

    @property
    def capacity_bytes(self) -> int:
        bits = self.capacity_bits
        if bits % 8:
            raise ConfigError("capacity is not byte-aligned")
        return bits // 8

    @property
    def row_bits(self) -> int:
        """Bits stored by one subarray row (the COMET line unit)."""
        return self.cols_per_subarray * self.bits_per_cell

    @property
    def wavelengths_required(self) -> int:
        """N_c wavelengths operate a bank (Section III.C)."""
        return self.cols_per_bank

    @property
    def access_mr_count(self) -> int:
        """Per bank: Nc column-access + Nc readout rings (Section III.C)."""
        return 2 * self.cols_per_bank

    @property
    def row_access_mr_count(self) -> int:
        """MRs tuned for one subarray access: 2 x Mc (Section III.C)."""
        return 2 * self.cols_per_subarray

    @property
    def subarray_grid_side(self) -> int:
        """sqrt(Sr) — the subarray layout grid used by Eq. (4)."""
        side = math.isqrt(self.row_subarrays)
        if side * side != self.row_subarrays:
            raise ConfigError(
                f"Sr = {self.row_subarrays} is not a perfect square; the "
                "Eq. (4) layout grid needs sqrt(Sr) to be an integer"
            )
        return side

    def describe(self) -> str:
        """Human-readable (B x Sr x Mr x Mc x b) string."""
        return (f"({self.banks} x {self.row_subarrays} x "
                f"{self.rows_per_subarray} x {self.cols_per_subarray} x "
                f"{self.bits_per_cell})")
