"""Material database records and lookup."""

import pytest

from repro.errors import MaterialError
from repro.materials.database import (
    MATERIAL_NAMES,
    get_material,
    get_record,
)


class TestLookup:
    @pytest.mark.parametrize("name", MATERIAL_NAMES)
    def test_all_materials_resolve(self, name):
        record = get_record(name)
        assert record.name == name
        material = get_material(name)
        assert material.name == name

    def test_case_insensitive(self):
        assert get_record("gst").name == "GST"
        assert get_record("sb2se3").name == "Sb2Se3"

    def test_unknown_material(self):
        with pytest.raises(MaterialError):
            get_record("VO2")


class TestAnchors:
    def test_gst_anchor_values(self):
        record = get_record("GST")
        assert record.nk_amorphous_1550 == (3.94, 0.045)
        assert record.nk_crystalline_1550 == (6.11, 0.83)

    def test_crystalline_index_exceeds_amorphous(self):
        for name in MATERIAL_NAMES:
            record = get_record(name)
            assert record.nk_crystalline_1550[0] > record.nk_amorphous_1550[0]

    def test_oscillators_reproduce_anchors(self):
        for name in MATERIAL_NAMES:
            record = get_record(name)
            osc_a, osc_c = record.build_oscillators()
            n_a, _ = osc_a.nk(1550e-9)
            n_c, _ = osc_c.nk(1550e-9)
            assert n_a == pytest.approx(record.nk_amorphous_1550[0], rel=1e-6)
            assert n_c == pytest.approx(record.nk_crystalline_1550[0], rel=1e-6)


class TestThermal:
    def test_melt_above_crystallization(self):
        for name in MATERIAL_NAMES:
            thermal = get_record(name).thermal
            assert thermal.melting_temperature_k \
                > thermal.crystallization_temperature_k

    def test_conductivity_mixing(self):
        thermal = get_record("GST").thermal
        k_a = thermal.conductivity(0.0)
        k_c = thermal.conductivity(1.0)
        k_mid = thermal.conductivity(0.5)
        assert k_a == thermal.conductivity_amorphous_w_mk
        assert k_c == thermal.conductivity_crystalline_w_mk
        assert k_a < k_mid < k_c

    def test_conductivity_clamps_fraction(self):
        thermal = get_record("GST").thermal
        assert thermal.conductivity(-1.0) == thermal.conductivity(0.0)
        assert thermal.conductivity(2.0) == thermal.conductivity(1.0)

    def test_volumetric_heat_positive(self):
        thermal = get_record("GST").thermal
        assert thermal.volumetric_heat_capacity() > 1e5


class TestKinetics:
    def test_gst_fastest_crystallizer(self):
        """GST's headline property: fastest crystallization of the three."""
        rates = {name: get_record(name).kinetics.k_max_per_s
                 for name in MATERIAL_NAMES}
        assert rates["GST"] > rates["GSST"] > rates["Sb2Se3"]

    def test_optimal_temperature_inside_window(self):
        for name in MATERIAL_NAMES:
            record = get_record(name)
            assert (record.thermal.crystallization_temperature_k
                    < record.kinetics.optimal_temperature_k
                    < record.thermal.melting_temperature_k)
