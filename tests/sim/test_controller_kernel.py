"""The fast-path scheduler kernel: engagement, fallback, bit-identity.

The kernel computes contention-free per-bank-queue schedules with
grouped prefix passes; these tests pin

* that it engages exactly on the device class it claims (contention
  free **and** per-bank queues) while the other classes route to their
  compiled exact-twin kernels (or to the scalar recurrences when a
  class is disabled),
* that engaged or fallback, ``run_fast`` / ``run_arrays(fast=True)``
  are bit-identical to the scalar ``run`` path and schedule-identical
  to ``run_reference``,
* the per-bank admission-stamp semantics (latency measured from the
  bank's own queue slice) including the deterministic reversion to the
  global-queue model when a stamp would bind service.
"""

import pytest

from repro.sim import controller as controller_mod
from repro.sim.controller import MemoryController
from repro.sim.devices import EnergyModel, MemoryDeviceModel
from repro.sim.engine import controller_for
from repro.sim.request import MemRequest, OpType
from repro.sim.tracegen import cached_trace_arrays


def perbank_device(**overrides):
    base = dict(
        name="photonic-test",
        line_bytes=128,
        banks=4,
        data_burst_ns=4.0,
        interface_delay_ns=10.0,
        read_occupancy_ns=10.0,
        write_occupancy_ns=100.0,
        shared_bus=False,
        burst_overlaps_array=True,
        per_bank_queues=True,
        energy=EnergyModel(read_energy_j=1e-9, write_energy_j=5e-9),
    )
    base.update(overrides)
    return MemoryDeviceModel(**base)


def read_at(t, address=0):
    return MemRequest(address=address, op=OpType.READ, arrival_ns=t)


@pytest.fixture(autouse=True)
def fresh_counters():
    controller_mod.reset_kernel_counters()
    yield
    controller_mod.reset_kernel_counters()


class TestDispatch:
    def test_comet_is_kernel_eligible(self):
        device = controller_for("COMET").device
        assert device.contention_free and device.per_bank_queues

    def test_cosmos_keeps_the_global_queue(self):
        """COSMOS's subtractive read-erase-read flow centralizes its
        controller: contention-free links, but no per-bank queues."""
        device = controller_for("COSMOS").device
        assert device.contention_free and not device.per_bank_queues

    def test_kernel_engages_on_comet(self):
        trace = cached_trace_arrays("gcc", 800, 1)
        controller_for("COMET").run_arrays(trace)
        assert controller_mod.kernel_counters()["fast"] == 1

    @pytest.mark.parametrize("arch,kernel_class", [
        ("COSMOS", "global_queue"),
        ("3D_DDR4", "shared_bus"),
        ("EPCM-MM", "shared_bus"),
    ])
    def test_other_devices_take_their_own_kernels(self, arch, kernel_class):
        """DRAM/EPCM/COSMOS cells no longer fall back: each dispatches
        to the compiled exact twin for its timing structure."""
        trace = cached_trace_arrays("gcc", 800, 1)
        controller_for(arch).run_arrays(trace)
        counters = controller_mod.kernel_counters()
        assert counters["fast"] == 1
        assert counters[f"fast_{kernel_class}"] == 1
        assert counters["fallback_device"] == 0

    @pytest.mark.parametrize("arch", ["COSMOS", "3D_DDR4", "EPCM-MM"])
    def test_disabled_classes_fall_back_per_device(self, arch):
        """With every kernel class disabled the old fallback behaviour
        returns: scalar recurrences, one device fallback per cell."""
        previous = controller_mod.set_disabled_fast_classes(
            controller_mod.KERNEL_CLASSES)
        try:
            trace = cached_trace_arrays("gcc", 800, 1)
            controller_for(arch).run_arrays(trace)
            counters = controller_mod.kernel_counters()
        finally:
            controller_mod.set_disabled_fast_classes(previous)
        assert counters["fast"] == 0
        assert counters["fallback_device"] == 1

    def test_fast_false_pins_the_scalar_path(self):
        trace = cached_trace_arrays("gcc", 800, 1)
        controller_for("COMET").run_arrays(trace, fast=False)
        assert controller_mod.kernel_counters()["fast"] == 0


class TestBitIdentity:
    @pytest.mark.parametrize("arch", ["COMET", "COMET-thermal", "COSMOS"])
    @pytest.mark.parametrize("workload", ["mcf", "lbm"])
    def test_fast_equals_scalar_equals_reference(self, arch, workload):
        trace = cached_trace_arrays(workload, 2500, 1)
        controller = controller_for(arch)
        fast = controller.run_arrays(trace, fast=True)
        scalar = controller.run_arrays(trace, fast=False)
        assert fast.to_dict() == scalar.to_dict()
        reference = controller.run_reference(trace.to_requests(), workload)
        # The oracle accumulates op energy per request (re-associated
        # sum); every schedule-derived quantity must match bit for bit.
        assert fast.latencies_ns == reference.latencies_ns
        assert fast.sim_time_ns == reference.sim_time_ns
        assert fast.busy_time_ns == reference.busy_time_ns
        assert fast.active_time_ns == reference.active_time_ns
        assert fast.op_energy_j == pytest.approx(reference.op_energy_j,
                                                 rel=1e-12)

    def test_run_fast_object_api_matches_run(self):
        trace = cached_trace_arrays("milc", 1200, 3)
        controller = controller_for("COMET")
        fast = controller.run_fast(trace.to_requests(), "milc")
        scalar = controller.run(trace.to_requests(), "milc")
        assert fast.to_dict() == scalar.to_dict()
        assert controller_mod.kernel_counters()["fast"] == 1

    def test_request_objects_get_identical_service_fields(self):
        trace = cached_trace_arrays("omnetpp", 600, 2)
        controller = controller_for("COMET")
        via_fast = trace.to_requests()
        via_scalar = trace.to_requests()
        controller.run_fast(via_fast, "omnetpp")
        controller.run(via_scalar, "omnetpp")
        for a, b in zip(via_fast, via_scalar):
            assert (a.arrival_ns, a.start_ns, a.finish_ns, a.completion_ns) \
                == (b.arrival_ns, b.start_ns, b.finish_ns, b.completion_ns)


class TestPerBankAdmission:
    def test_single_read_latency_unchanged(self):
        controller = MemoryController(perbank_device())
        stats = controller.run_fast([read_at(0.0)])
        # 10 (array, overlapped burst) + 4 (burst) + 10 (interface)
        assert stats.latencies_ns[0] == pytest.approx(24.0)

    def test_stamp_measures_from_bank_queue_slice(self):
        """With bank queue depth q, request k is admitted no earlier
        than the finish of request k-q of the same bank — so a deep
        same-bank burst has bounded latency, not O(k) queueing."""
        device = perbank_device(banks=1)
        controller = MemoryController(device, queue_depth=2)
        burst = [read_at(0.0, 0) for _ in range(12)]
        stats = controller.run_fast(burst)
        assert controller_mod.kernel_counters()["fast"] == 1
        # Chain: start_k = 10k, finish_k = 10k + 14; admitted_k =
        # finish_{k-2} = 10k - 6 for k >= 2; completion_k = 10k + 24.
        assert stats.latencies_ns[0] == pytest.approx(24.0)
        for latency in stats.latencies_ns[2:]:
            assert latency == pytest.approx(30.0)

    def test_binding_stamp_reverts_to_global_queue(self):
        """A depth-1 bank queue stamps admission at the previous finish,
        which lands after the chain start — the cell must revert to the
        global-queue model, in the kernel and both scalar tiers alike."""
        device = perbank_device(banks=1)
        controller = MemoryController(device, queue_depth=1)
        burst = [read_at(0.0, 0) for _ in range(6)]
        fast = controller.run_fast(list(burst))
        counters = controller_mod.kernel_counters()
        assert counters["fallback_admission"] == 1
        scalar = controller.run(list(burst))
        reference = controller.run_reference(list(burst))
        assert fast.to_dict() == scalar.to_dict()
        assert fast.latencies_ns == reference.latencies_ns
        # Global-queue semantics: depth-1 queue serializes admission.
        globalq = MemoryController(
            perbank_device(banks=1, per_bank_queues=False), queue_depth=1)
        assert fast.latencies_ns == globalq.run(list(burst)).latencies_ns

    def test_comet_small_queue_override_falls_back(self):
        """queue_depth overrides below one entry per bank exercise the
        admission fallback on real COMET cells (the sweep's ablation
        axis), bit-identical to the scalar path."""
        trace = cached_trace_arrays("lbm", 1500, 1)
        controller = controller_for("COMET", queue_depth=8)
        fast = controller.run_arrays(trace, fast=True)
        assert controller_mod.kernel_counters()["fallback_admission"] == 1
        scalar = controller.run_arrays(trace, fast=False)
        assert fast.to_dict() == scalar.to_dict()

    def test_bank_queue_depth_splits_global_depth(self):
        controller = controller_for("COMET")
        device = controller.device
        assert controller.bank_queue_depth \
            == max(1, controller.queue_depth // device.banks)


class TestCounters:
    def test_counters_accumulate_and_reset(self):
        trace = cached_trace_arrays("gcc", 500, 1)
        controller_for("COMET").run_arrays(trace)
        controller_for("COSMOS").run_arrays(trace)
        controller_for("2D_DDR3").run_arrays(trace)
        counters = controller_mod.kernel_counters()
        assert counters == {"fast": 3,
                            "fast_per_bank": 1,
                            # With a toolchain the per-bank cell rides
                            # the compiled twin (attribution, not an
                            # extra dispatch).
                            "twin_per_bank": 1,
                            "fast_shared_bus": 1,
                            "fast_global_queue": 1,
                            "fallback_device": 0,
                            "fallback_admission": 0,
                            "fallback_toolchain": 0}
        controller_mod.reset_kernel_counters()
        assert all(v == 0
                   for v in controller_mod.kernel_counters().values())
