"""SimStats metrics, the device factory, and end-to-end simulator runs."""

import json
import math

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim import ARCHITECTURE_NAMES, MainMemorySimulator, build_device
from repro.sim.stats import SimStats, geometric_mean


def make_stats(**overrides):
    base = dict(
        device_name="X", workload_name="w", num_requests=10,
        num_reads=7, num_writes=3, total_bytes=1280,
        sim_time_ns=1000.0, busy_time_ns=500.0, active_time_ns=250.0,
        latencies_ns=[100.0] * 10, op_energy_j=1e-9,
        background_power_w=1.0, active_power_w=2.0,
    )
    base.update(overrides)
    return SimStats(**base)


class TestStats:
    def test_bandwidth(self):
        stats = make_stats()
        assert stats.bandwidth_gbps == pytest.approx(1.28)   # B/ns = GB/s

    def test_latency_percentiles(self):
        stats = make_stats(latencies_ns=list(range(1, 101)))
        assert stats.avg_latency_ns == pytest.approx(50.5)
        assert stats.p95_latency_ns == pytest.approx(95.05, rel=0.01)
        assert stats.max_latency_ns == 100.0

    def test_energy_composition(self):
        stats = make_stats()
        expected = (1.0 * 1000e-9) + (2.0 * 250e-9) + 1e-9
        assert stats.total_energy_j == pytest.approx(expected)

    def test_epb(self):
        stats = make_stats()
        assert stats.energy_per_bit_pj == pytest.approx(
            stats.total_energy_j / (1280 * 8) * 1e12)

    def test_bw_per_epb(self):
        stats = make_stats()
        assert stats.bw_per_epb == pytest.approx(
            stats.bandwidth_gbps / stats.energy_per_bit_pj)

    def test_as_row_keys(self):
        row = make_stats().as_row()
        assert {"device", "workload", "bandwidth_gbps", "epb_pj"} <= set(row)

    def test_empty_latencies_row_is_nan_not_crash(self):
        """A cell with no completed requests keeps its table row: latency
        columns come back NaN instead of raising mid-table."""
        stats = make_stats(latencies_ns=[])
        row = stats.as_row()
        assert math.isnan(row["avg_latency_ns"])
        assert math.isnan(row["p95_latency_ns"])
        assert row["bandwidth_gbps"] == pytest.approx(1.28)
        latency = stats.latency_row()
        assert all(math.isnan(latency[key]) for key in
                   ("avg_latency_ns", "p95_latency_ns", "max_latency_ns"))
        # Direct property access still surfaces the inconsistency.
        with pytest.raises(SimulationError):
            stats.avg_latency_ns

    def test_empty_latencies_survive_summarize(self):
        from repro.sim import summarize
        summary = summarize({"X": {"w": make_stats(latencies_ns=[])}})
        assert math.isnan(summary["X"]["avg_latency_ns"])
        assert summary["X"]["bandwidth_gbps"] == pytest.approx(1.28)


class TestStatsSerialization:
    def test_round_trip_is_bit_identical(self):
        stats = make_stats(latencies_ns=[1.5, 2.25, 1e-7])
        payload = json.loads(json.dumps(stats.to_dict()))
        assert SimStats.from_dict(payload) == stats

    def test_unknown_keys_ignored(self):
        payload = make_stats().to_dict()
        payload["future_field"] = 42
        assert SimStats.from_dict(payload) == make_stats()

    def test_to_dict_without_latencies(self):
        stats = make_stats()
        payload = stats.to_dict(latencies=False)
        assert payload["latencies_ns"] == []
        restored = SimStats.from_dict(payload)
        assert restored.num_requests == 10
        # The trimmed payload carries a fixed-bin latency summary, so
        # mean/max reload exactly and percentiles interpolate instead
        # of degrading to NaN.
        assert restored.avg_latency_ns == stats.avg_latency_ns
        assert restored.max_latency_ns == stats.max_latency_ns
        assert restored.p95_latency_ns <= restored.max_latency_ns

    def test_no_samples_and_no_summary_is_nan(self):
        payload = make_stats().to_dict(latencies=False)
        payload.pop("latency_summary")      # pre-summary producer
        restored = SimStats.from_dict(payload)
        assert math.isnan(restored.as_row()["avg_latency_ns"])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(SimulationError):
            geometric_mean([1.0, 0.0])

    def test_invalid_sim_time(self):
        with pytest.raises(SimulationError):
            make_stats(sim_time_ns=0.0)


class TestFactory:
    @pytest.mark.parametrize("name", ARCHITECTURE_NAMES)
    def test_every_architecture_builds(self, name):
        device = build_device(name)
        assert device.name == name
        assert device.line_bytes == 128
        assert device.banks >= 4

    def test_unknown_architecture(self):
        with pytest.raises(ConfigError):
            build_device("HBM3")

    def test_comet_device_shape(self):
        device = build_device("COMET")
        assert device.banks == 32            # 8 channels x 4 banks
        assert device.channels == 8
        assert not device.shared_bus
        assert device.read_occupancy_ns == pytest.approx(10.0)
        assert device.refresh is None        # non-volatile

    def test_cosmos_device_shape(self):
        device = build_device("COSMOS")
        assert device.banks == 64            # 8 channels x 8 banks
        assert device.row_buffer is not None  # subarray buffer
        assert device.write_occupancy_ns == pytest.approx(1600.0)

    def test_dram_has_refresh(self):
        device = build_device("2D_DDR3")
        assert device.refresh is not None
        assert device.refresh.interval_ns == pytest.approx(7800.0)

    def test_photonic_power_higher_than_dram_background(self):
        comet = build_device("COMET")
        ddr3 = build_device("2D_DDR3")
        assert comet.energy.active_power_w > 10 * ddr3.energy.background_power_w


class TestSimulatorRuns:
    def test_workload_run_produces_stats(self):
        simulator = MainMemorySimulator("COMET")
        stats = simulator.run_workload("gcc", num_requests=1500)
        assert stats.num_requests == 1500
        assert stats.bandwidth_gbps > 0.0
        assert stats.avg_latency_ns > 0.0

    def test_requests_sorted_internally(self):
        from repro.sim.request import MemRequest, OpType
        simulator = MainMemorySimulator("EPCM-MM")
        requests = [
            MemRequest(address=256, op=OpType.READ, arrival_ns=50.0),
            MemRequest(address=0, op=OpType.READ, arrival_ns=0.0),
        ]
        stats = simulator.run(requests)
        assert stats.num_requests == 2

    def test_comet_faster_than_cosmos_on_any_workload(self):
        comet = MainMemorySimulator("COMET").run_workload("milc", 2000)
        cosmos = MainMemorySimulator("COSMOS").run_workload("milc", 2000)
        assert comet.bandwidth_gbps > cosmos.bandwidth_gbps
        assert comet.avg_latency_ns < cosmos.avg_latency_ns


class TestArrivalOrderHandling:
    """The simulator sorts only when it must (the tracegen paths always
    emit arrival-ordered streams, so the common case skips the sort)."""

    @staticmethod
    def _trace(arrivals):
        from repro.sim.request import MemRequest, OpType
        return [MemRequest(address=128 * i, op=OpType.READ, arrival_ns=t)
                for i, t in enumerate(arrivals)]

    def test_out_of_order_equals_presorted(self):
        shuffled = [70.0, 10.0, 40.0, 0.0, 90.0, 40.0]
        simulator = MainMemorySimulator("EPCM-MM")
        scrambled = simulator.run(self._trace(shuffled))
        ordered = simulator.run(self._trace(sorted(shuffled)))
        assert scrambled.latencies_ns == ordered.latencies_ns
        assert scrambled.sim_time_ns == ordered.sim_time_ns

    def test_sorted_input_not_copied(self, monkeypatch):
        """An already-ordered stream must reach the controller as-is —
        no O(n log n) re-sort, no list copy."""
        simulator = MainMemorySimulator("EPCM-MM")
        requests = self._trace([0.0, 5.0, 5.0, 20.0])
        seen = []
        original = simulator.controller.run

        def spy(reqs, workload_name="trace"):
            seen.append(reqs)
            return original(reqs, workload_name=workload_name)

        monkeypatch.setattr(simulator.controller, "run", spy)
        simulator.run(requests)
        assert seen[0] is requests

    def test_unsorted_input_is_sorted_not_rejected(self):
        """The controller itself rejects unsorted streams; the simulator
        front door repairs them instead."""
        from repro.errors import SimulationError
        simulator = MainMemorySimulator("EPCM-MM")
        trace = self._trace([30.0, 0.0])
        with pytest.raises(SimulationError):
            simulator.controller.run(self._trace([30.0, 0.0]))
        stats = simulator.run(trace)
        assert stats.num_requests == 2
