"""CLI: ``python -m repro.tools.staticcheck [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--format json``
emits a machine-readable report (schema pinned by the analyzer tests).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.tools.staticcheck.checkers import ALL_CHECKERS
from repro.tools.staticcheck.core import run_checks

#: Bumped when the JSON report shape changes.
REPORT_VERSION = 1


def _parse_names(raw: str) -> list:
    return [name.strip() for name in raw.split(",") if name.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.staticcheck",
        description="AST-driven invariant analyzer for the repro tree")
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: <root>/src)")
    parser.add_argument(
        "--root", default=".",
        help="repository root findings are reported relative to")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", metavar="NAMES",
                        help="comma-separated checkers to run")
    parser.add_argument("--ignore", metavar="NAMES",
                        help="comma-separated checkers to skip")
    parser.add_argument("--list-checkers", action="store_true",
                        help="print available checkers and exit")
    args = parser.parse_args(argv)

    if args.list_checkers:
        for checker in ALL_CHECKERS:
            print(f"{checker.name}: {checker.description}")
        return 0

    known = {checker.name for checker in ALL_CHECKERS}
    select = _parse_names(args.select) if args.select else None
    ignore = _parse_names(args.ignore) if args.ignore else None
    for names in (select or []), (ignore or []):
        unknown = sorted(set(names) - known)
        if unknown:
            parser.error(f"unknown checker(s) {unknown}; "
                         f"known: {sorted(known)}")

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"--root {args.root!r} is not a directory")
    paths = [Path(p) for p in args.paths] or None
    result = run_checks(root, ALL_CHECKERS, paths=paths,
                        select=select, ignore=ignore)

    if args.format == "json":
        print(json.dumps({
            "version": REPORT_VERSION,
            "files_scanned": result.files_scanned,
            "checkers": list(result.checkers),
            "findings": [f.to_dict() for f in result.findings],
        }, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.describe())
        noun = "finding" if len(result.findings) == 1 else "findings"
        print(f"staticcheck: {len(result.findings)} {noun} across "
              f"{result.files_scanned} files "
              f"({len(result.checkers)} checkers)")
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
