"""EPCM and DRAM baseline configurations."""

import dataclasses

import pytest

from repro.baselines.dram import DRAM_CONFIGS, dram_config
from repro.baselines.epcm import EPCM_MM, EpcmConfig
from repro.errors import ConfigError


class TestEpcm:
    def test_write_is_set_limited(self):
        assert EPCM_MM.write_latency_ns == EPCM_MM.set_latency_ns
        assert EPCM_MM.write_asymmetry > 2.0

    def test_no_refresh_semantics(self):
        """EPCM is non-volatile: nothing in the config implies refresh."""
        assert not hasattr(EPCM_MM, "t_refi_ns")

    def test_write_energy_dominates_read(self):
        assert EPCM_MM.write_energy_per_line_j > 5 * EPCM_MM.read_energy_per_line_j

    def test_validation(self):
        with pytest.raises(ConfigError):
            EpcmConfig(banks=0)
        with pytest.raises(ConfigError):
            EpcmConfig(read_latency_ns=0.0)


class TestDram:
    def test_all_four_variants_present(self):
        assert set(DRAM_CONFIGS) == {"2D_DDR3", "2D_DDR4", "3D_DDR3", "3D_DDR4"}

    def test_lookup(self):
        assert dram_config("2D_DDR3").name == "2D_DDR3"
        with pytest.raises(ConfigError):
            dram_config("DDR5")

    def test_ddr4_faster_bus_than_ddr3(self):
        assert dram_config("2D_DDR4").data_burst_ns \
            < dram_config("2D_DDR3").data_burst_ns

    def test_3d_lower_core_latency(self):
        for generation in ("DDR3", "DDR4"):
            flat = dram_config(f"2D_{generation}")
            stacked = dram_config(f"3D_{generation}")
            assert stacked.t_rcd_ns < flat.t_rcd_ns
            assert stacked.banks > flat.banks

    def test_3d_cheaper_energy(self):
        for generation in ("DDR3", "DDR4"):
            flat = dram_config(f"2D_{generation}")
            stacked = dram_config(f"3D_{generation}")
            assert stacked.dynamic_energy_per_line_j \
                < flat.dynamic_energy_per_line_j
            assert stacked.background_power_w < flat.background_power_w

    def test_row_timing_helpers(self):
        cfg = dram_config("2D_DDR3")
        assert cfg.row_miss_read_ns == pytest.approx(
            cfg.t_rp_ns + cfg.t_rcd_ns + cfg.t_cas_ns)
        assert cfg.row_hit_read_ns == pytest.approx(cfg.t_cas_ns)

    def test_refresh_overhead_few_percent(self):
        for cfg in DRAM_CONFIGS.values():
            assert 0.01 < cfg.refresh_overhead < 0.06

    def test_validation(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(dram_config("2D_DDR3"), t_rcd_ns=0.0)
