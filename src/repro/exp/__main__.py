"""Command-line entry point: ``python -m repro.exp [experiment ...]``.

With no arguments, runs every registered experiment in paper order.

``run-all`` regenerates the paper artifacts through the store/server
substrate so a second pass is incremental end to end::

    python -m repro.exp run-all --store results/ --num-requests 4000
    python -m repro.exp run-all fig9 fig10 headline --store results/
    REPRO_RESULT_STORE=results/ python -m repro.exp run-all

Precedence: ``--server`` (else ``$REPRO_EVAL_SERVER``) routes the
simulation grids through a running evaluation daemon; otherwise
``--store`` (else ``$REPRO_RESULT_STORE``) serves cells from disk and
checkpoints new ones.  ``--expect-no-compute`` exits 3 if any
store-capable experiment computed a cell — the warm-regeneration
invariant CI pins.  In ``--server`` mode the assertion reads the
daemon's ``/stats`` ``computed``-counter delta (the cells are computed
inside the daemon; the local engine counter never moves).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..errors import ReproError, SimulationError
from .registry import EXPERIMENTS, get_experiment


def _server_computed_count(server: str) -> int:
    """The daemon's lifetime ``computed`` cell counter (from ``/stats``).

    In ``--server`` mode the cells are evaluated inside the daemon, so
    ``--expect-no-compute`` must assert on the daemon's counter delta —
    the local engine counter never moves.
    """
    from ..sim.client import EvalClient

    return int(EvalClient(server).stats()["computed"])


def run_all_main(argv) -> int:
    from ..sim.client import SERVER_ENV_VAR
    from ..sim.store import ResultStore
    from .fig9 import STORE_ENV_VAR
    from .report import run_all

    parser = argparse.ArgumentParser(
        prog="repro.exp run-all",
        description="Regenerate paper artifacts incrementally through "
                    "the result-store / evaluation-server substrate.",
    )
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids to run (default: all, in "
                             "paper order)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             f"${STORE_ENV_VAR})")
    parser.add_argument("--server", default=None, metavar="ADDR",
                        help="evaluation-daemon address; overrides "
                             f"--store (default: ${SERVER_ENV_VAR})")
    parser.add_argument("--num-requests", type=int, default=None,
                        metavar="N",
                        help="simulation request count per grid cell "
                             "(default: each experiment's own)")
    parser.add_argument("--expect-no-compute", action="store_true",
                        help="exit 3 if any simulation cell was computed "
                             "(warm-store regeneration check)")
    args = parser.parse_args(argv)

    server = args.server or os.environ.get(SERVER_ENV_VAR) or None
    store = None
    if server is None:
        store_path = args.store or os.environ.get(STORE_ENV_VAR) or None
        if store_path is not None:
            try:
                store = ResultStore(store_path)
            except (OSError, SimulationError) as error:
                print(f"run-all: result store {store_path!r} unusable: "
                      f"{error}", file=sys.stderr)
                return 2
    for exp_id in args.experiments:
        get_experiment(exp_id)    # fail on typos before running anything
    server_baseline = None
    if args.expect_no_compute and server is not None:
        # Server-side evaluation: the warm-pass invariant lives in the
        # daemon's ``computed`` counter, so snapshot it before running.
        try:
            server_baseline = _server_computed_count(server)
        except SimulationError as error:
            print(f"run-all: cannot read server stats from {server!r}: "
                  f"{error}", file=sys.stderr)
            return 2
    summary = run_all(args.experiments or None, store=store, server=server,
                      num_requests=args.num_requests)
    failed = [row["experiment"] for row in summary
              if row["status"] != "ok"]
    if failed:
        print(f"run-all: failed experiments: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    if args.expect_no_compute:
        if server_baseline is not None:
            try:
                computed = _server_computed_count(server) - server_baseline
            except SimulationError as error:
                print(f"run-all: cannot read server stats from {server!r}: "
                      f"{error}", file=sys.stderr)
                return 2
            source = "the daemon computed"
        else:
            computed = sum(int(row["computed cells"]) for row in summary)
            source = "computed"
        if computed:
            print(f"run-all: expected a warm store but {source} "
                  f"{computed} cells", file=sys.stderr)
            return 3
    return 0


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "run-all":
        try:
            return run_all_main(args[1:])
        except (ReproError, OSError) as error:
            # Unknown experiment id, unusable substrate, transport
            # failure: a clean one-line message, not a traceback.
            print(f"run-all: {error}", file=sys.stderr)
            return 1
    ids = args if args else list(EXPERIMENTS)
    for exp_id in ids:
        experiment = get_experiment(exp_id)
        print(f"=== {experiment.exp_id}: {experiment.description} ===")
        experiment.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
