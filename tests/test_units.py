"""Unit-conversion helpers."""

import math

import numpy as np
import pytest

from repro import units
from repro.constants import photon_energy_ev, wavelength_from_energy_ev


class TestDecibels:
    def test_db_to_linear_roundtrip(self):
        for db in (-30.0, -3.0, 0.0, 3.0, 20.0):
            assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)

    def test_three_db_doubles(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_dbm_conversions(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)
        assert units.watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_transmission_loss_roundtrip(self):
        for t in (1.0, 0.5, 0.1, 1e-3):
            loss = units.transmission_to_loss_db(t)
            assert loss >= 0.0
            assert units.loss_db_to_transmission(loss) == pytest.approx(t)

    def test_transmission_bounds_enforced(self):
        with pytest.raises(ValueError):
            units.transmission_to_loss_db(0.0)
        with pytest.raises(ValueError):
            units.transmission_to_loss_db(1.5)
        with pytest.raises(ValueError):
            units.loss_db_to_transmission(-0.1)

    def test_array_support(self):
        arr = np.array([0.5, 0.25])
        out = units.transmission_to_loss_db(arr)
        assert out.shape == arr.shape
        assert out[0] == pytest.approx(3.0103, rel=1e-4)


class TestAbsorption:
    def test_kappa_to_alpha(self):
        # alpha = 4*pi*kappa/lambda
        alpha = units.kappa_to_alpha_per_m(0.83, 1550e-9)
        assert alpha == pytest.approx(4 * math.pi * 0.83 / 1550e-9)

    def test_kappa_to_db_per_m_positive(self):
        assert units.kappa_to_db_per_m(0.1, 1550e-9) > 0.0

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            units.kappa_to_alpha_per_m(0.1, 0.0)


class TestPhotonEnergy:
    def test_1550nm_energy(self):
        assert photon_energy_ev(1550e-9) == pytest.approx(0.7999, abs=1e-3)

    def test_roundtrip(self):
        wl = 1530e-9
        assert wavelength_from_energy_ev(photon_energy_ev(wl)) == pytest.approx(wl)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            photon_energy_ev(-1.0)
        with pytest.raises(ValueError):
            wavelength_from_energy_ev(0.0)


class TestPrefixes:
    def test_si_helpers(self):
        assert units.nm(480) == pytest.approx(480e-9)
        assert units.um(2) == pytest.approx(2e-6)
        assert units.ns(10) == pytest.approx(10e-9)
        assert units.mw(5) == pytest.approx(5e-3)
        assert units.pj(880) == pytest.approx(880e-12)
