"""Table II timing derivation and the CometArchitecture facade."""

import pytest

from repro.arch import CometArchitecture
from repro.config import COMET_TIMINGS
from repro.device import ProgrammingMode
from repro.errors import ConfigError


class TestDerivedTimings:
    def test_read_matches_table_ii(self, comet):
        derived = comet.derived_timings()
        assert derived.read_time_ns == pytest.approx(
            COMET_TIMINGS.read_time_ns, rel=0.05)

    def test_write_within_table_ii_envelope(self, comet):
        derived = comet.derived_timings()
        assert derived.max_write_time_ns <= COMET_TIMINGS.write_time_ns
        assert derived.max_write_time_ns > 0.5 * COMET_TIMINGS.write_time_ns

    def test_erase_close_to_table_ii(self, comet):
        derived = comet.derived_timings()
        assert derived.erase_time_ns == pytest.approx(
            COMET_TIMINGS.erase_time_ns, rel=0.15)

    def test_deviations_reported(self, comet):
        deviations = comet.derived_timings().deviations()
        assert set(deviations) == {"read", "write", "erase", "burst"}
        assert all(abs(v) < 0.5 for v in deviations.values())


class TestFacade:
    def test_default_is_paper_configuration(self, comet):
        assert comet.bits_per_cell == 4
        assert comet.material.name == "GST"
        assert comet.organization.describe() == "(4 x 4096 x 512 x 256 x 4)"

    def test_part_capacity_8gib(self, comet):
        assert comet.capacity_bytes == 8 * 2**30

    def test_reset_energies_via_facade(self, comet):
        assert comet.reset_energy_pj(
            ProgrammingMode.CRYSTALLINE_DEPOSITED) == pytest.approx(880, rel=0.05)
        assert comet.reset_energy_pj(
            ProgrammingMode.AMORPHOUS_DEPOSITED) == pytest.approx(280, rel=0.05)

    def test_describe_mentions_key_facts(self, comet):
        text = comet.describe()
        assert "COMET-4b" in text
        assert "256 wavelengths" in text

    def test_power_breakdown_positive(self, comet):
        stack = comet.power_breakdown()
        assert stack.total_w > 0.0
        assert stack.name == "COMET-4b"

    def test_other_bit_densities_construct(self):
        for bits in (1, 2):
            arch = CometArchitecture(bits_per_cell=bits)
            assert arch.bits_per_cell == bits
            assert arch.capacity_bytes == 8 * 2**30

    def test_invalid_bit_density(self):
        with pytest.raises(ConfigError):
            CometArchitecture(bits_per_cell=3)

    def test_lut_matches_bits(self, comet):
        assert comet.lut.paper_entry_count == 46
