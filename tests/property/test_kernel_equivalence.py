"""Hypothesis equivalence: ``run_fast`` ↔ ``run`` ↔ ``run_reference``.

The fast-path scheduler kernel must be indistinguishable from the
scalar tiers on *every* cell the evaluation substrate can name — all
registered architectures (Fig. 9 seven + ablation variants), the full
workload set, arbitrary request counts, seeds and queue-depth
overrides, including the cells that must take a fallback (non-eligible
devices, binding per-bank admission stamps).

``run_fast`` vs ``run`` is pinned as **complete SimStats equality**
(bit-for-bit, every field).  ``run_reference`` re-associates its
per-request energy sum, so the oracle comparison pins every
schedule-derived field bit-for-bit and the energy to 1e-12 relative —
the same contract PR 1 established between ``run`` and the oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import controller as controller_mod
from repro.sim.controller import MemoryController
from repro.sim.devices import EnergyModel, MemoryDeviceModel
from repro.sim.engine import controller_for
from repro.sim.factory import known_architectures
from repro.sim.tracegen import WORKLOAD_NAMES, cached_trace_arrays

#: Every registered architecture: the Fig. 9 seven plus the variants —
#: kernel-eligible (COMET family), contention-free-but-global-queue
#: (COSMOS family) and refresh/bus devices (DRAM, EPCM) all appear.
ARCHES = st.sampled_from(known_architectures())
WORKLOADS = st.sampled_from(WORKLOAD_NAMES)


def _assert_equivalent(controller, trace, workload):
    fast = controller.run_arrays(trace, workload_name=workload, fast=True)
    scalar = controller.run_arrays(trace, workload_name=workload, fast=False)
    assert fast.to_dict() == scalar.to_dict()
    reference = controller.run_reference(trace.to_requests(), workload)
    assert fast.latencies_ns == reference.latencies_ns
    assert fast.sim_time_ns == reference.sim_time_ns
    assert fast.busy_time_ns == reference.busy_time_ns
    assert fast.active_time_ns == reference.active_time_ns
    assert fast.refresh_count == reference.refresh_count
    assert fast.row_hits == reference.row_hits
    assert fast.row_misses == reference.row_misses
    assert fast.op_energy_j == pytest.approx(reference.op_energy_j,
                                             rel=1e-12)
    return fast


class TestKernelEquivalence:
    @given(arch=ARCHES, workload=WORKLOADS,
           # Mixed workloads need one request per component program.
           num_requests=st.integers(min_value=2, max_value=400),
           seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_three_tiers_agree_across_the_registry(
            self, arch, workload, num_requests, seed):
        trace = cached_trace_arrays(workload, num_requests, seed)
        _assert_equivalent(controller_for(arch), trace, workload)

    @given(workload=WORKLOADS,
           num_requests=st.integers(min_value=2, max_value=400),
           queue_depth=st.integers(min_value=1, max_value=512))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_queue_depth_overrides_agree_on_comet(
            self, workload, num_requests, queue_depth):
        """Small overrides force the admission fallback, large ones the
        kernel — both must match the scalar tiers exactly."""
        trace = cached_trace_arrays(workload, num_requests, 1)
        controller = controller_for("COMET", queue_depth=queue_depth)
        _assert_equivalent(controller, trace, workload)

    @given(banks=st.integers(min_value=1, max_value=9),
           queue_depth=st.integers(min_value=1, max_value=64),
           overlap=st.booleans(),
           num_requests=st.integers(min_value=1, max_value=300),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_synthetic_per_bank_devices(self, banks, queue_depth, overlap,
                                        num_requests, seed):
        """Per-bank-queue devices beyond the COMET presets: odd bank
        counts, tiny queues (admission fallback), both overlap modes."""
        device = MemoryDeviceModel(
            name="synthetic",
            line_bytes=128,
            banks=banks,
            data_burst_ns=3.0,
            interface_delay_ns=7.0,
            read_occupancy_ns=11.0,
            write_occupancy_ns=37.0,
            shared_bus=False,
            burst_overlaps_array=overlap,
            per_bank_queues=True,
            energy=EnergyModel(read_energy_j=1e-9, write_energy_j=2e-9),
        )
        controller = MemoryController(device, queue_depth=queue_depth)
        trace = cached_trace_arrays("mcf", num_requests, seed % 7 + 1)
        _assert_equivalent(controller, trace, "mcf")

    def test_fallback_cells_were_exercised(self):
        """Sanity on the suite itself: the dispatch counters show both
        the kernel and its fallbacks ran during this module."""
        counters = controller_mod.kernel_counters()
        assert counters["fast"] > 0
        assert counters["fallback_device"] > 0
