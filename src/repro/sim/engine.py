"""Parallel evaluation engine: the (architecture x workload) grid runner.

The Fig. 9 evaluation — every architecture against every workload — is
embarrassingly parallel across grid cells, and each cell repeats two
expensive setups: generating the workload trace and building the device
model.  The engine removes both:

* **Per-process caches** — devices are built once per architecture and
  traces generated once per ``(workload, n, seed)`` (write-locked
  column arrays, shared read-only between cells).
* **Process fan-out** — with ``workers > 1`` the grid is mapped over a
  ``multiprocessing`` pool in *workload-major* chunks, so each chunk
  reuses one cached trace across all architectures.  Results come back
  in task order, so the output is deterministic and bit-identical to the
  serial path regardless of worker count or scheduling.
* **Serial fallback** — ``workers=1`` (the default) runs the same cells
  in-process; if a pool cannot be created (restricted sandboxes), the
  engine degrades to serial rather than failing.

``REPRO_EVAL_WORKERS`` sets the default worker count; the vectorized
controller (:meth:`MemoryController.run_arrays`) is the per-cell hot
path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import SimulationError, TraceError
from .controller import QUEUE_DEPTH_PER_CHANNEL, MemoryController
from .factory import ARCHITECTURE_NAMES, build_device
from .stats import SimStats
from .tracegen import SPEC_WORKLOADS, cached_trace_arrays, get_workload

#: Environment override for the default worker count.
WORKERS_ENV_VAR = "REPRO_EVAL_WORKERS"

_CONTROLLER_CACHE: Dict[str, MemoryController] = {}


@dataclass(frozen=True)
class EvalTask:
    """One grid cell: a workload trace run against one architecture."""

    architecture: str
    workload: str
    num_requests: int
    seed: int


def controller_for(architecture: str) -> MemoryController:
    """Per-process memoized controller (device build is the costly part —
    COMET's involves the mode-solver stack)."""
    controller = _CONTROLLER_CACHE.get(architecture)
    if controller is None:
        device = build_device(architecture)
        controller = MemoryController(
            device,
            queue_depth=QUEUE_DEPTH_PER_CHANNEL * device.channels,
        )
        _CONTROLLER_CACHE[architecture] = controller
    return controller


def evaluate_cell(task: EvalTask) -> SimStats:
    """Run one grid cell; the unit of work the pool distributes."""
    trace = cached_trace_arrays(task.workload, task.num_requests, task.seed)
    return controller_for(task.architecture).run_arrays(
        trace, workload_name=task.workload)


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "1")
        try:
            workers = int(raw)
        except ValueError:
            raise SimulationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise SimulationError("worker count must be non-negative")
    return max(workers, 1)


def _map_tasks(tasks: List[EvalTask], workers: int,
               chunksize: int) -> List[SimStats]:
    """Map cells over a worker pool, falling back to serial execution."""
    if workers <= 1 or len(tasks) <= 1:
        return [evaluate_cell(task) for task in tasks]
    try:
        import multiprocessing

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            return pool.map(evaluate_cell, tasks, chunksize=chunksize)
    except (ImportError, OSError, PermissionError):
        # Restricted environments (no /dev/shm, no fork): degrade to the
        # serial path — identical results, just no fan-out.
        return [evaluate_cell(task) for task in tasks]


def run_evaluation(
    architectures: Sequence[str] = ARCHITECTURE_NAMES,
    workloads: Optional[Iterable[str]] = None,
    num_requests: int = 20_000,
    seed: int = 1,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, SimStats]]:
    """The full Fig. 9 grid: every architecture on every workload.

    Returns ``results[arch][workload] -> SimStats``.  ``workers`` > 1
    fans the grid out over that many processes; the result is identical
    to the serial run for the same arguments.
    """
    workload_names = list(workloads) if workloads is not None \
        else sorted(SPEC_WORKLOADS)
    if not workload_names:
        raise SimulationError("need at least one workload")
    architectures = list(architectures)
    if not architectures:
        raise SimulationError("need at least one architecture")
    for name in workload_names:
        try:
            get_workload(name)
        except TraceError as error:
            raise SimulationError(str(error)) from None

    # Workload-major order: one chunk covers every architecture for one
    # workload, so each worker generates (or receives via fork) each
    # trace at most once.
    tasks = [
        EvalTask(arch, workload, num_requests, seed)
        for workload in workload_names
        for arch in architectures
    ]
    stats_list = _map_tasks(tasks, _resolve_workers(workers),
                            chunksize=len(architectures))

    results: Dict[str, Dict[str, SimStats]] = {
        arch: {} for arch in architectures
    }
    for task, stats in zip(tasks, stats_list):
        results[task.architecture][task.workload] = stats
    return results
