"""Elastic fabric smoke: real daemons under a seeded chaos schedule.

The CI job runs this end to end against real processes (no pytest, no
in-process shortcuts): launch two paced ``python -m repro.sim.chaos``
daemons (the real ``serve`` daemon with a per-cell delay so faults land
mid-run) plus a spare, drive a partitioned grid through the elastic
coordinator with a watched host file, and fire a *seeded* chaos
schedule — SIGKILL one daemon, restart it, and join the spare mid-run —
then assert that

* the killed daemon is re-admitted by the health prober and completes
  at least one stolen cell *after* its rebirth (checked via
  ``FabricResult`` provenance — ``readmitted`` and
  ``completed_after_readmission`` — not just the exit code),
* the joined spare is admitted and the per-host completed counts cover
  the whole grid,
* the results are bit-identical to a serial ``run_sweep`` of the same
  spec despite all of the churn,
* ``python -m repro.sim merge-stores`` folds the daemons' stores (plus
  the coordinator's local write-through store) together without
  conflicts, and
* a warm sweep against the merged store recomputes nothing.

Usage::

    PYTHONPATH=src python examples/fabric_smoke.py
"""

import os
import subprocess
import sys
import tempfile

from repro.sim.chaos import ChaosDaemon, ChaosSchedule
from repro.sim.client import EvalClient
from repro.sim.fabric import HostFileMembership, run_fabric
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepSpec, run_sweep

SPEC = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                 workloads=("gcc", "lbm", "mcf", "milc"),
                 num_requests=(4000,), seeds=(7, 11), queue_depths=(None,))

#: Per-cell pacing: slow enough that the kill, the ~1-2 s restart and
#: the join all land with cells still unstarted, fast enough for CI.
CELL_DELAY = 0.4

#: Replayable chaos: this seed draws kill@2 / restart@3 / join@4 with
#: daemon 1 as the victim — early faults, maximum post-rejoin runway.
SEED = 2028


def main() -> int:
    root = tempfile.mkdtemp(prefix="fabric-smoke-")
    local = os.path.join(root, "local")
    merged = os.path.join(root, "merged")
    hostfile = os.path.join(root, "hosts.txt")
    progress = []
    daemons = []
    spare = None
    try:
        daemons = [ChaosDaemon(cell_delay=CELL_DELAY,
                               store=os.path.join(root, f"daemon{index}"))
                   for index in range(2)]
        spare = ChaosDaemon(cell_delay=CELL_DELAY,
                            store=os.path.join(root, "spare"))
        with open(hostfile, "w") as stream:
            stream.write("".join(d.address + "\n" for d in daemons))
        print(f"fleet up: {', '.join(d.address for d in daemons)} "
              f"(spare {spare.address})")

        schedule = ChaosSchedule.seeded(SEED, SPEC.num_cells, len(daemons))
        victim = daemons[next(e.target for e in schedule.events
                              if e.kind == "kill")]
        print("schedule:", "; ".join(
            f"{e.kind}(daemon{e.target}) after {e.after_completed} cells"
            for e in schedule.events))

        def join_spare(_target):
            with open(hostfile, "w") as stream:
                stream.write("".join(
                    d.address + "\n" for d in (*daemons, spare)))

        schedule.run_in_thread(
            progress=lambda: len(progress),
            actions={"kill": lambda t: daemons[t].kill(),
                     "restart": lambda t: daemons[t].restart(),
                     "join": join_spare})

        def report(address, old, new, reason):
            print(f"membership: {address} {old} -> {new} ({reason})",
                  flush=True)

        result = run_fabric(
            SPEC, membership=HostFileMembership(hostfile),
            store=ResultStore(local), window=1, retries=0, backoff=0.05,
            cell_attempts=8, probe_interval=0.1, probe_timeout=1.0,
            timeout=120.0,
            on_result=lambda task, stats: progress.append(task),
            on_membership=report)
        schedule.stop()    # surfaces any injection that failed
        print(f"fabric: {result.describe()}")

        assert len(schedule.fired) == len(schedule.events), \
            f"only {schedule.fired} fired of {schedule.events}"
        assert victim.address in result.readmitted, \
            f"victim never re-admitted: {result.transitions}"
        rejoined = result.completed_after_readmission.get(victim.address, 0)
        assert rejoined >= 1, \
            "re-admitted daemon completed no cells after its rebirth"
        print(f"victim re-admitted, completed {rejoined} cells post-rejoin")
        assert spare.address in result.joined, result.joined
        assert result.per_host.get(spare.address, 0) >= 0
        assert result.store_hits == 0
        assert sum(result.per_host.values()) == result.completed \
            == SPEC.num_cells
        assert len(result.results) == SPEC.num_cells

        serial = run_sweep(SPEC)
        assert result.results == serial.results, \
            "fabric results diverge from serial run_sweep"
        print("fabric results bit-identical to serial run_sweep")

        merge = subprocess.run(
            [sys.executable, "-m", "repro.sim", "merge-stores",
             "--into", merged,
             os.path.join(root, "daemon0"), os.path.join(root, "daemon1"),
             os.path.join(root, "spare"), local],
            capture_output=True, text=True, env={**os.environ})
        print(merge.stdout, end="")
        assert merge.returncode == 0, \
            f"merge-stores exited {merge.returncode}: {merge.stderr}"
        print("stores merged without conflicts")

        warm = run_sweep(SPEC, store=ResultStore(merged), resume=True)
        assert warm.computed == 0, \
            f"warm sweep against merged store recomputed {warm.computed}"
        assert warm.results == serial.results
        print("merged store warm no-compute: results bit-identical")

        for daemon in (*daemons, spare):
            EvalClient(daemon.address).shutdown()
            code = daemon.process.wait(timeout=60)
            assert code == 0, f"{daemon.address} exited {code}"
        print("clean shutdown")
        return 0
    finally:
        for daemon in (*daemons, *([spare] if spare else [])):
            daemon.close()


if __name__ == "__main__":
    sys.exit(main())
