"""Fig. 6 — latency and transmission of the 16 intermediate GST levels.

Reproduces the level table of the designed 4-bit cell for both
programming case studies (Section III.B), along with the two reset-pulse
energies the paper anchors on (880 pJ crystalline-deposited, 280 pJ
amorphous-deposited).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..device import (
    CellProgrammer,
    LevelProgram,
    MultiLevelCell,
    OpticalGstCell,
    ProgrammingMode,
)
from ..materials import get_material
from .report import print_table

PAPER_RESET_ENERGY_PJ = {
    ProgrammingMode.CRYSTALLINE_DEPOSITED: 880.0,
    ProgrammingMode.AMORPHOUS_DEPOSITED: 280.0,
}


@dataclass
class Fig6Result:
    levels: Dict[ProgrammingMode, List[LevelProgram]]
    reset_energy_pj: Dict[ProgrammingMode, float]
    level_spacing: float


def run(bits_per_cell: int = 4) -> Fig6Result:
    cell = OpticalGstCell(get_material("GST"))
    mlc = MultiLevelCell.for_cell(cell, bits_per_cell)
    programmer = CellProgrammer(cell)
    levels = {}
    resets = {}
    for mode in ProgrammingMode:
        levels[mode] = programmer.level_table(mlc, mode)
        resets[mode] = programmer.reset_energy_j(mode) * 1e12
    return Fig6Result(levels=levels, reset_energy_pj=resets,
                      level_spacing=mlc.level_spacing)


def main() -> Fig6Result:
    result = run()
    for mode, table in result.levels.items():
        rows = []
        for entry in table:
            rows.append([
                entry.level,
                f"{entry.crystalline_fraction:.3f}",
                f"{entry.transmission:.3f}",
                f"{entry.pulse.duration_s * 1e9:.1f}",
                f"{entry.energy_j * 1e12:.0f}",
                f"{entry.latency_s * 1e9:.1f}",
            ])
        print_table(
            ["level", "cryst frac", "transmission", "pulse (ns)",
             "energy (pJ)", "latency (ns)"],
            rows,
            title=(f"Fig. 6 — 16 levels, {mode.value} "
                   f"(spacing {result.level_spacing:.3f})"),
        )
        print(f"  reset energy: {result.reset_energy_pj[mode]:.0f} pJ "
              f"(paper: {PAPER_RESET_ENERGY_PJ[mode]:.0f} pJ)\n")
    return result


if __name__ == "__main__":
    main()
