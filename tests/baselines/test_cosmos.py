"""COSMOS baseline: Section IV.B re-modeling."""

import pytest

from repro.baselines.cosmos import (
    COSMOS_LEVELS,
    COSMOS_WORST_CELL_LOSS_DB,
    CosmosArchitecture,
    cosmos_power_breakdown,
)
from repro.exp.fig8 import run as run_fig8


@pytest.fixture(scope="module")
def cosmos():
    return CosmosArchitecture()


class TestRemodeling:
    def test_bit_density_reduced_to_2(self, cosmos):
        """Crosstalk forces COSMOS from 4 to 2 bits/cell (Section IV.B)."""
        assert cosmos.bits_per_cell == 2

    def test_four_asymmetric_levels(self, cosmos):
        assert COSMOS_LEVELS == (0.99, 0.90, 0.81, 0.72)
        assert cosmos.level_spacing() == pytest.approx(0.09)

    def test_worst_cell_loss_1_4_db(self):
        """Transmission 0.72 -> 1.4 dB worst in-path loss."""
        assert COSMOS_WORST_CELL_LOSS_DB == pytest.approx(1.43, abs=0.02)

    def test_subtractive_read_occupancy(self, cosmos):
        """read + erase + read = 25 + 250 + 25 ns."""
        assert cosmos.effective_read_occupancy_ns() == pytest.approx(300.0)

    def test_write_occupancy_includes_erase(self, cosmos):
        assert cosmos.effective_write_occupancy_ns() == pytest.approx(1850.0)

    def test_write_energy_uses_750pj_pulses(self, cosmos):
        """512 cells/line x 750 pJ x 2 (erase + program)."""
        cells = 1024 // 2
        assert cosmos.write_energy_per_line_j == pytest.approx(
            cosmos.write_energy_per_line_j)
        assert cosmos.write_energy_per_line_j() == pytest.approx(
            2 * cells * 750e-12)

    def test_plain_read_mode_available(self):
        plain = CosmosArchitecture(subtractive_read=False)
        assert plain.effective_read_occupancy_ns() == pytest.approx(25.0)


class TestPower:
    def test_breakdown_components_positive(self, cosmos):
        stack = cosmos.power_breakdown()
        assert stack.laser_w > 0.0
        assert stack.soa_w > 0.0
        assert stack.tuning_w == 0.0   # no EO-tuned rings in the crossbar

    def test_laser_dominates(self, cosmos):
        """5 mW row+column+erase streams at 16 banks: laser-heavy."""
        stack = cosmos.power_breakdown()
        assert stack.laser_w > stack.soa_w

    def test_comet_power_fraction_near_paper(self):
        """Paper: COMET consumes ~26 % of COSMOS's power; we land within
        [0.2, 0.45]."""
        result = run_fig8()
        assert 0.20 <= result.power_ratio <= 0.45

    def test_convenience_breakdown(self):
        assert cosmos_power_breakdown().total_w > 0.0
