"""Fig. 7 — COMET power stacks for bit densities 1, 2 and 4.

The study behind the b=4 choice: halving Nc with each doubling of b
halves both the laser comb and the active SOA population, so total power
drops ~2x per step while capacity and cache-line bandwidth stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.power import PowerBreakdown, bit_density_study
from .report import print_table


@dataclass
class Fig7Result:
    stacks: Dict[int, PowerBreakdown]

    @property
    def selected_bits(self) -> int:
        """The paper selects the lowest-power configuration (b=4)."""
        return min(self.stacks, key=lambda b: self.stacks[b].total_w)

    def power_ratio(self, bits_a: int, bits_b: int) -> float:
        return self.stacks[bits_a].total_w / self.stacks[bits_b].total_w


def run() -> Fig7Result:
    return Fig7Result(stacks=bit_density_study())


def main() -> Fig7Result:
    result = run()
    rows = []
    for bits, stack in sorted(result.stacks.items()):
        rows.append([
            stack.name,
            f"{stack.laser_w:.1f}",
            f"{stack.soa_w:.1f}",
            f"{stack.tuning_w * 1e3:.1f} mW",
            f"{stack.total_w:.1f}",
        ])
    print_table(
        ["config", "laser (W)", "SOA (W)", "EO tuning", "total (W)"],
        rows,
        title="Fig. 7 — COMET power stacks vs bit density (paper picks b=4)",
    )
    print(f"  selected: b={result.selected_bits} "
          f"(b=1 is {result.power_ratio(1, 4):.1f}x the b=4 power)\n")
    return result


if __name__ == "__main__":
    main()
