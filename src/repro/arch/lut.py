"""SOA gain look-up table (Section III.E / IV.A).

The electrical interface stores, per row address, the SOA gain that
compensates the row-position-dependent EO-tuned-MR through losses of a
readout.  Because the intra-subarray SOA mesh resets the signal every 46
rows, the required gain repeats with that period; within a period it only
needs to be stored at the bit-density-dependent granularity (10 rows at
b=1, 4 at b=2, 1 at b=4 — Section IV.A).

The paper quotes the resulting sizes with a mixed convention: 52 "entries"
for b=1 (rows of the subarray / granularity: ceil(512/10)), but 12 and 46
entries for b=2/b=4 (one SOA period / granularity: ceil(46/4), ceil(46/1)).
:class:`GainLUT` exposes both counts and reproduces all three numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from .reliability import lut_granularity_rows, soa_row_interval


@dataclass(frozen=True)
class GainLUT:
    """Quantized per-row gain storage for one subarray geometry."""

    rows_per_subarray: int
    bits_per_cell: int
    params: OpticalParameters = TABLE_I

    def __post_init__(self) -> None:
        if self.rows_per_subarray < 1:
            raise ConfigError("subarray needs at least one row")
        if self.bits_per_cell < 1:
            raise ConfigError("bits per cell must be at least 1")

    # -- sizing ------------------------------------------------------------

    @property
    def granularity_rows(self) -> int:
        """Rows sharing one gain entry (10 / 4 / 1 for b = 1 / 2 / 4)."""
        return lut_granularity_rows(self.bits_per_cell, self.params)

    @property
    def soa_interval_rows(self) -> int:
        """Rows between SOA stages (46 with Table I values)."""
        return soa_row_interval(self.params)

    @property
    def distinct_entries(self) -> int:
        """Distinct gains within one SOA period: ceil(interval/granularity).

        Matches the paper's 5 (b=1), 12 (b=2), 46 (b=4).
        """
        return math.ceil(self.soa_interval_rows / self.granularity_rows)

    @property
    def row_entries(self) -> int:
        """Entries covering every subarray row: ceil(Mr/granularity).

        Matches the paper's 52 for b=1 with Mr=512.
        """
        return math.ceil(self.rows_per_subarray / self.granularity_rows)

    @property
    def paper_entry_count(self) -> int:
        """The entry count as the paper quotes it (mixed convention)."""
        if self.bits_per_cell == 1:
            return self.row_entries
        return self.distinct_entries

    # -- gain retrieval -------------------------------------------------------

    def entry_index_for_row(self, row: int) -> int:
        """Index of the LUT entry serving a row (Section IV.A selectors).

        Rows are grouped into granularity-sized blocks within one SOA
        period; every row of a block shares the block's stored gain.
        """
        if not 0 <= row < self.rows_per_subarray:
            raise ConfigError(f"row {row} outside subarray")
        position = row % self.soa_interval_rows
        return position // self.granularity_rows

    def gain_db_for_row(self, row: int) -> float:
        """Gain applied for a readout originating at ``row``.

        The residual loss between the row and its nearest downstream SOA
        stage is ``(row % interval) * through_loss``; each block stores the
        gain of its *last* row, so the compensation always errs toward
        slight over-amplification (safe for level decisions, which alias
        downward under loss) while staying within one tolerance of exact.
        """
        index = self.entry_index_for_row(row)
        last_row_of_block = min(
            index * self.granularity_rows + self.granularity_rows - 1,
            self.soa_interval_rows - 1,
        )
        return last_row_of_block * self.params.eo_mr_through_loss_db

    def table(self) -> List[float]:
        """The distinct gain values of one SOA period, in dB."""
        period = min(self.soa_interval_rows, self.rows_per_subarray)
        seen: List[float] = []
        for row in range(period):
            gain = self.gain_db_for_row(row)
            if not seen or seen[-1] != gain:
                seen.append(gain)
        return seen

    def residual_loss_db_for_row(self, row: int) -> float:
        """|gain - exact loss| after quantization (bounded by tolerance)."""
        exact = (row % self.soa_interval_rows) * self.params.eo_mr_through_loss_db
        return abs(self.gain_db_for_row(row) - exact)
