"""Readout chain: photodetection SNR and level-decision error rates.

The paper argues material and loss choices in terms of "better
signal-to-noise ratio at the readout" (Section II.A) and derives loss
tolerances per bit density (Section III.C); this module closes the loop
quantitatively and supports the 5-bits/cell discussion ([17] demonstrates
34 states; the paper still picks 4 bits/cell):

* a PIN photodetector with thermal + shot noise at a given bandwidth,
* per-level SNR for a cell's level map at a given received optical power,
* the worst-pair level-decision error probability (Gaussian Q-function),
* the maximum reliable bit density at a given power/noise point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from ..constants import ELEMENTARY_CHARGE, BOLTZMANN
from ..errors import ConfigError
from .mlc import MultiLevelCell


@dataclass(frozen=True)
class PhotodetectorModel:
    """PIN photodetector with thermal and shot noise."""

    responsivity_a_per_w: float = 1.0
    bandwidth_hz: float = 5e9          # matches the ~10 ns read window
    load_resistance_ohm: float = 5e3   # TIA transimpedance class
    temperature_k: float = 300.0
    dark_current_a: float = 10e-9

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0.0 or self.bandwidth_hz <= 0.0:
            raise ConfigError("responsivity and bandwidth must be positive")

    def photocurrent_a(self, optical_power_w: float) -> float:
        if optical_power_w < 0.0:
            raise ConfigError("optical power must be non-negative")
        return self.responsivity_a_per_w * optical_power_w

    def noise_current_a(self, optical_power_w: float) -> float:
        """RMS noise current: thermal + shot (signal and dark)."""
        thermal = math.sqrt(
            4.0 * BOLTZMANN * self.temperature_k * self.bandwidth_hz
            / self.load_resistance_ohm)
        signal_current = self.photocurrent_a(optical_power_w)
        shot = math.sqrt(
            2.0 * ELEMENTARY_CHARGE * (signal_current + self.dark_current_a)
            * self.bandwidth_hz)
        return math.hypot(thermal, shot)

    def snr_db(self, optical_power_w: float) -> float:
        """Electrical SNR of a received optical level."""
        signal = self.photocurrent_a(optical_power_w)
        noise = self.noise_current_a(optical_power_w)
        if signal <= 0.0:
            raise ConfigError("no signal at detector")
        return 20.0 * math.log10(signal / noise)


@dataclass(frozen=True)
class ReadoutModel:
    """Level-decision statistics for one MLC level map."""

    detector: PhotodetectorModel = PhotodetectorModel()
    received_power_w: float = 1e-4      # power for transmission = 1.0

    def __post_init__(self) -> None:
        if self.received_power_w <= 0.0:
            raise ConfigError("received power must be positive")

    def level_separation_current_a(self, mlc: MultiLevelCell) -> float:
        """Photocurrent gap between adjacent levels."""
        power_gap = mlc.level_spacing * self.received_power_w
        return self.detector.photocurrent_a(power_gap)

    def worst_pair_error_probability(self, mlc: MultiLevelCell) -> float:
        """Decision-error probability of the noisiest adjacent level pair.

        Gaussian decision between adjacent levels with a midpoint
        threshold: ``P_err = 0.5 * erfc(d / (2*sqrt(2)*sigma))`` with
        ``d`` the current separation and ``sigma`` the noise at the
        brighter level (worst shot noise).
        """
        separation = self.level_separation_current_a(mlc)
        brightest_w = mlc.max_transmission * self.received_power_w
        sigma = self.detector.noise_current_a(brightest_w)
        argument = separation / (2.0 * math.sqrt(2.0) * sigma)
        return 0.5 * float(erfc(argument))

    def symbol_error_probability(self, mlc: MultiLevelCell) -> float:
        """Union-bound symbol error across the level ladder."""
        per_pair = self.worst_pair_error_probability(mlc)
        return min(1.0, 2.0 * (mlc.num_levels - 1) / mlc.num_levels * per_pair)

    def max_reliable_bits(
        self, target_error: float = 1e-9, max_bits: int = 6
    ) -> int:
        """Largest bit density whose worst-pair error beats the target."""
        if not 0.0 < target_error < 1.0:
            raise ConfigError("target error must be a probability")
        best = 0
        for bits in range(1, max_bits + 1):
            mlc = MultiLevelCell(bits)
            if self.worst_pair_error_probability(mlc) <= target_error:
                best = bits
        return best

    def snr_per_level_db(self, mlc: MultiLevelCell) -> np.ndarray:
        """Electrical SNR of each stored level at the detector."""
        levels = mlc.level_transmissions()
        return np.array([
            self.detector.snr_db(t * self.received_power_w) for t in levels
        ])
