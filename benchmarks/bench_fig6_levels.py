"""Bench Fig. 6 — 16-level programming tables and reset case studies."""

import pytest

from repro.device.programming import ProgrammingMode
from repro.exp.fig6 import run as run_fig6


def bench_fig6_level_tables(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    # 16 equally spaced levels at ~6 % spacing (paper Section III.B).
    assert result.level_spacing == pytest.approx(0.06, abs=0.005)
    for mode, table in result.levels.items():
        assert len(table) == 16

    # Reset energies anchor to the paper's case studies.
    assert result.reset_energy_pj[ProgrammingMode.CRYSTALLINE_DEPOSITED] \
        == pytest.approx(880, rel=0.05)
    assert result.reset_energy_pj[ProgrammingMode.AMORPHOUS_DEPOSITED] \
        == pytest.approx(280, rel=0.05)

    # Fig. 6 shape: in the amorphous-deposited mode, latency rises with
    # crystalline fraction and every write fits the Table II envelope.
    table = result.levels[ProgrammingMode.AMORPHOUS_DEPOSITED]
    latencies = [entry.latency_s for entry in table[1:]]
    assert all(b >= a for a, b in zip(latencies, latencies[1:]))
    assert max(entry.latency_s for entry in table) <= 170e-9
