"""Sweep runner: resumability, cache hits, export, queue-depth axis."""

import csv
import io
import json
import math

import pytest

from repro.errors import SimulationError
from repro.sim import engine
from repro.sim.engine import EvalTask
from repro.sim.store import ResultStore
from repro.sim.sweep import (
    ROW_FIELDS,
    SweepSpec,
    run_sweep,
    write_csv,
    write_json,
)

SPEC = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                 workloads=("gcc", "bursty"),
                 num_requests=(500,), seeds=(3,))


@pytest.fixture(autouse=True)
def _serial_default(monkeypatch):
    """Don't let a developer's REPRO_EVAL_WORKERS turn these serial-order
    and call-count assumptions into pool runs."""
    monkeypatch.delenv("REPRO_EVAL_WORKERS", raising=False)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "sweep-store")


class TestSpec:
    def test_tasks_cover_the_full_cross_product(self):
        spec = SweepSpec(architectures=("EPCM-MM",), workloads=("gcc",),
                         num_requests=(100, 200), seeds=(1, 2),
                         queue_depths=(None, 8))
        tasks = spec.tasks()
        assert len(tasks) == spec.num_cells == 8
        assert len(set(tasks)) == 8

    def test_workload_major_sharding_order(self):
        tasks = SPEC.tasks()
        # All architectures of one workload are adjacent (one shard
        # shares one cached trace).
        assert [t.architecture for t in tasks[:2]] == ["EPCM-MM", "2D_DDR3"]
        assert tasks[0].workload == tasks[1].workload

    def test_validation(self):
        with pytest.raises(SimulationError):
            SweepSpec(architectures=())
        with pytest.raises(SimulationError):
            SweepSpec(architectures=("HBM3",))
        with pytest.raises(SimulationError):
            SweepSpec(workloads=("nope",))
        with pytest.raises(SimulationError):
            SweepSpec(queue_depths=(0,))

    def test_duplicate_axis_values_rejected(self):
        """Duplicates would compute identical cells twice and skew the
        store-hit provenance counts."""
        with pytest.raises(SimulationError, match="duplicate"):
            SweepSpec(seeds=(1, 1))
        with pytest.raises(SimulationError, match="duplicate"):
            SweepSpec(architectures=("EPCM-MM", "EPCM-MM"))


class TestRunSweep:
    def test_cold_run_populates_store(self, store):
        result = run_sweep(SPEC, store=store)
        assert result.computed == SPEC.num_cells
        assert result.store_hits == 0
        assert len(store) == SPEC.num_cells

    def test_warm_run_hits_every_cell_and_skips_evaluate_cell(
            self, store, monkeypatch):
        cold = run_sweep(SPEC, store=store)

        def forbidden(task):
            raise AssertionError(f"evaluate_cell called for {task}")

        monkeypatch.setattr(engine, "evaluate_cell", forbidden)
        warm = run_sweep(SPEC, store=store)
        assert warm.store_hits == SPEC.num_cells
        assert warm.computed == 0
        assert warm.results == cold.results   # bit-identical stats

    def test_resume_false_recomputes(self, store):
        run_sweep(SPEC, store=store)
        again = run_sweep(SPEC, store=store, resume=False)
        assert again.computed == SPEC.num_cells
        assert again.store_hits == 0

    def test_interrupted_sweep_resumes_bit_identical(
            self, tmp_path, monkeypatch):
        """Kill the sweep mid-run; the restarted sweep must finish from
        the checkpoint and match an uninterrupted serial run exactly."""
        reference = run_sweep(SPEC, workers=1)   # uninterrupted, storeless

        store = ResultStore(tmp_path / "interrupted")
        real = engine.evaluate_cell
        calls = {"n": 0}

        def dies_after_three(task):
            if calls["n"] >= 3:
                raise SimulationError("worker killed")
            calls["n"] += 1
            return real(task)

        monkeypatch.setattr(engine, "evaluate_cell", dies_after_three)
        with pytest.raises(SimulationError):
            run_sweep(SPEC, store=store, workers=1)
        assert len(store) == 3          # checkpointed up to the crash

        monkeypatch.setattr(engine, "evaluate_cell", real)
        resumed = run_sweep(SPEC, store=store, workers=1)
        assert resumed.store_hits == 3
        assert resumed.computed == SPEC.num_cells - 3
        assert resumed.results == reference.results

    def test_queue_depth_axis_changes_results(self, store):
        spec = SweepSpec(architectures=("EPCM-MM",), workloads=("gcc",),
                         num_requests=(500,), seeds=(3,),
                         queue_depths=(None, 1))
        result = run_sweep(spec, store=store)
        default = result.results[EvalTask("EPCM-MM", "gcc", 500, 3, None)]
        shallow = result.results[EvalTask("EPCM-MM", "gcc", 500, 3, 1)]
        # A depth-1 transaction queue throttles admission: same service
        # totals, lower measured queue latency.
        assert shallow.avg_latency_ns < default.avg_latency_ns
        assert len(store) == 2           # distinct digests per depth

    def test_on_result_fires_per_computed_cell(self):
        seen = []
        run_sweep(SPEC, workers=1,
                  on_result=lambda task, stats: seen.append(task))
        assert seen == SPEC.tasks()   # serial: completion order == task order


class TestExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(SPEC)

    def test_rows_in_sweep_order_with_all_fields(self, result):
        rows = result.rows()
        assert len(rows) == SPEC.num_cells
        assert all(tuple(row) == ROW_FIELDS for row in rows)
        assert [r["workload"] for r in rows[:2]] == ["gcc", "gcc"]

    def test_csv_round_trip(self, result):
        buffer = io.StringIO()
        write_csv(result.rows(), buffer)
        parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert len(parsed) == SPEC.num_cells
        first = result.rows()[0]
        assert parsed[0]["architecture"] == first["architecture"]
        assert float(parsed[0]["bandwidth_gbps"]) == \
            pytest.approx(first["bandwidth_gbps"])

    def test_json_export_parses(self, result):
        buffer = io.StringIO()
        write_json(result.rows(), buffer)
        parsed = json.loads(buffer.getvalue())
        assert len(parsed) == SPEC.num_cells
        assert not math.isnan(parsed[0]["avg_latency_ns"])

    def test_json_export_nan_becomes_null(self, result):
        """Strict JSON: NaN latency columns (empty-latency cells) must
        export as null, never as the bare NaN token."""
        rows = result.rows()
        rows[0] = dict(rows[0], avg_latency_ns=float("nan"))
        buffer = io.StringIO()
        write_json(rows, buffer)
        text = buffer.getvalue()
        assert "NaN" not in text
        parsed = json.loads(text, parse_constant=lambda token: pytest.fail(
            f"non-standard JSON token {token!r}"))
        assert parsed[0]["avg_latency_ns"] is None
