"""Golden-stats regression: the Fig. 9 relative rankings, locked.

Future hot-path refactors (further controller vectorization, alternative
schedulers, new backends) must not silently change the headline results.
These tests pin the *relative* architecture rankings and the
cross-workload geometric-mean speedups at a fixed (n, seed) operating
point, with tolerance bands wide enough for benign numeric drift and
tight enough to catch semantic changes.

The quick variant (n=2500, full 7x8 SPEC grid) runs in tier-1; the
full-size variant (n=20000) carries the ``slow`` marker and runs with
``pytest --runslow``.
"""

from __future__ import annotations

import pytest

from repro.sim import ARCHITECTURE_NAMES, run_evaluation, summarize
from repro.sim.tracegen import MIXED_WORKLOADS, PHASED_WORKLOADS

#: Golden geomean bandwidth speedups of COMET over each architecture,
#: measured on the SPEC grid at num_requests=2500, seed=1.  The band is
#: +/-20 %: re-runs of unchanged code reproduce these exactly (the
#: engine is deterministic), so the band only absorbs deliberate benign
#: changes (e.g. float re-association in a refactor).
#: Re-centered for the per-bank transaction-queue model (PR 5): COMET's
#: admission no longer couples banks through one global FIFO, lifting
#: its bandwidth ~8 % uniformly — every prior golden stayed in band.
GOLDEN_BW_SPEEDUPS = {
    "2D_DDR3": 5.97,
    "3D_DDR3": 4.71,
    "2D_DDR4": 4.80,
    "3D_DDR4": 3.53,
    "EPCM-MM": 12.73,
    "COSMOS": 8.00,
}
BAND = 0.20

#: Golden EPB ratios (how much lower COMET's energy-per-bit is) for the
#: architectures the paper quotes.
GOLDEN_EPB_RATIOS = {"2D_DDR3": 0.356, "2D_DDR4": 0.202, "COSMOS": 16.2}


@pytest.fixture(scope="module")
def spec_summary():
    results = run_evaluation(num_requests=2500, seed=1)
    return summarize(results)


class TestGoldenSpeedups:
    @pytest.mark.parametrize("other", sorted(GOLDEN_BW_SPEEDUPS))
    def test_bandwidth_speedup_in_band(self, spec_summary, other):
        speedup = (spec_summary["COMET"]["bandwidth_gbps"]
                   / spec_summary[other]["bandwidth_gbps"])
        golden = GOLDEN_BW_SPEEDUPS[other]
        assert golden * (1 - BAND) <= speedup <= golden * (1 + BAND), (
            f"COMET-vs-{other} bandwidth speedup drifted: "
            f"{speedup:.2f}x vs golden {golden:.2f}x")

    @pytest.mark.parametrize("other", sorted(GOLDEN_EPB_RATIOS))
    def test_epb_ratio_in_band(self, spec_summary, other):
        ratio = (spec_summary[other]["epb_pj"]
                 / spec_summary["COMET"]["epb_pj"])
        golden = GOLDEN_EPB_RATIOS[other]
        assert golden * (1 - BAND) <= ratio <= golden * (1 + BAND)


class TestGoldenOrdering:
    def test_comet_tops_bandwidth(self, spec_summary):
        comet = spec_summary["COMET"]["bandwidth_gbps"]
        assert all(comet > spec_summary[a]["bandwidth_gbps"]
                   for a in ARCHITECTURE_NAMES if a != "COMET")

    def test_dram_generation_ordering(self, spec_summary):
        """3D beats 2D within a generation; DDR4 beats DDR3 in 3D."""
        bw = {a: spec_summary[a]["bandwidth_gbps"] for a in ARCHITECTURE_NAMES}
        assert bw["3D_DDR4"] > bw["2D_DDR4"]
        assert bw["3D_DDR3"] > bw["2D_DDR3"]
        assert bw["3D_DDR4"] > bw["3D_DDR3"]
        assert bw["2D_DDR3"] == min(
            bw[a] for a in ("2D_DDR3", "2D_DDR4", "3D_DDR3", "3D_DDR4"))

    def test_epcm_slowest_overall(self, spec_summary):
        bw = {a: spec_summary[a]["bandwidth_gbps"] for a in ARCHITECTURE_NAMES}
        assert bw["EPCM-MM"] == min(bw.values())

    def test_cosmos_worst_epb(self, spec_summary):
        epb = {a: spec_summary[a]["epb_pj"] for a in ARCHITECTURE_NAMES}
        assert epb["COSMOS"] == max(epb.values())

    def test_3d_ddr4_beats_comet_on_raw_epb(self, spec_summary):
        """Section IV.C's observation: 3D DRAM wins raw pJ/bit."""
        assert (spec_summary["3D_DDR4"]["epb_pj"]
                < spec_summary["COMET"]["epb_pj"])


class TestGoldenNewWorkloads:
    """The scenario workloads preserve the architecture separation."""

    @pytest.fixture(scope="class")
    def scenario_summary(self):
        names = sorted(MIXED_WORKLOADS) + sorted(PHASED_WORKLOADS)
        results = run_evaluation(workloads=names, num_requests=2000, seed=1)
        return summarize(results)

    def test_comet_tops_every_scenario_geomean(self, scenario_summary):
        comet = scenario_summary["COMET"]["bandwidth_gbps"]
        assert all(comet > scenario_summary[a]["bandwidth_gbps"]
                   for a in ARCHITECTURE_NAMES if a != "COMET")

    def test_comet_vs_cosmos_band_holds_on_scenarios(self, scenario_summary):
        """The paper's COMET-vs-COSMOS bandwidth gap (5.1-7.1x on SPEC)
        stays in the same regime under multi-programmed/phased traffic."""
        ratio = (scenario_summary["COMET"]["bandwidth_gbps"]
                 / scenario_summary["COSMOS"]["bandwidth_gbps"])
        assert 3.5 <= ratio <= 12.0


@pytest.mark.slow
class TestGoldenFullSize:
    """Full-size (n=20000) lock; run with --runslow."""

    def test_full_grid_speedups(self):
        summary = summarize(run_evaluation(num_requests=20_000, seed=1))
        for other, golden in GOLDEN_BW_SPEEDUPS.items():
            speedup = (summary["COMET"]["bandwidth_gbps"]
                       / summary[other]["bandwidth_gbps"])
            assert golden * (1 - BAND) <= speedup <= golden * (1 + BAND)


@pytest.mark.slow
class TestSeedEnsemble:
    """The Fig. 9 story is not a one-seed artifact: the golden bands
    and every ordering claim hold at three extra trace seeds.

    The goldens are *measured* at seed=1; other seeds draw different
    traces, so the speedup point moves — the same +/-20 % band that
    absorbs benign numeric drift must absorb seed-to-seed trace noise,
    or the headline numbers are too fragile to quote.  Run with
    ``pytest --runslow``.
    """

    EXTRA_SEEDS = (2, 3, 5)

    @pytest.fixture(scope="class")
    def ensemble(self):
        return {seed: summarize(run_evaluation(num_requests=2500, seed=seed))
                for seed in self.EXTRA_SEEDS}

    def test_speedup_bands_hold_at_every_seed(self, ensemble):
        for seed, summary in ensemble.items():
            for other, golden in GOLDEN_BW_SPEEDUPS.items():
                speedup = (summary["COMET"]["bandwidth_gbps"]
                           / summary[other]["bandwidth_gbps"])
                assert golden * (1 - BAND) <= speedup <= golden * (1 + BAND), (
                    f"seed={seed}: COMET-vs-{other} speedup {speedup:.2f}x "
                    f"left the golden band {golden:.2f}x +/- 20%")

    def test_architecture_ordering_is_seed_stable(self, ensemble):
        """The full bandwidth ranking — not just COMET-on-top — is the
        same total order at every seed."""
        orderings = {
            seed: tuple(sorted(
                ARCHITECTURE_NAMES,
                key=lambda a: summary[a]["bandwidth_gbps"], reverse=True))
            for seed, summary in ensemble.items()
        }
        baseline = summarize(run_evaluation(num_requests=2500, seed=1))
        expected = tuple(sorted(
            ARCHITECTURE_NAMES,
            key=lambda a: baseline[a]["bandwidth_gbps"], reverse=True))
        assert expected[0] == "COMET"
        for seed, ordering in orderings.items():
            assert ordering == expected, (
                f"seed={seed} reshuffled the architecture ranking: "
                f"{ordering} != {expected}")

    def test_epb_ratios_hold_at_every_seed(self, ensemble):
        for seed, summary in ensemble.items():
            for other, golden in GOLDEN_EPB_RATIOS.items():
                ratio = (summary[other]["epb_pj"]
                         / summary["COMET"]["epb_pj"])
                assert golden * (1 - BAND) <= ratio <= golden * (1 + BAND), (
                    f"seed={seed}: {other} EPB ratio {ratio:.3f} left the "
                    f"band around {golden:.3f}")
