"""Ablation — memory-level parallelism (transaction-queue depth).

The Fig. 9 gaps depend on how much MLP the controller exposes; this bench
sweeps the per-channel queue depth to show the COMET-vs-COSMOS bandwidth
ratio is robust to the choice (it is a service-capacity gap, not a
queueing artifact), while absolute latencies scale with depth.
"""

from repro.sim import MainMemorySimulator


def bench_ablation_queue_depth(benchmark):
    def run():
        results = {}
        for depth in (2, 8, 32):
            comet = MainMemorySimulator(
                "COMET", queue_depth_per_channel=depth
            ).run_workload("mcf", 4000)
            cosmos = MainMemorySimulator(
                "COSMOS", queue_depth_per_channel=depth
            ).run_workload("mcf", 4000)
            results[depth] = (comet, cosmos)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    ratios = {}
    for depth, (comet, cosmos) in sorted(results.items()):
        ratios[depth] = comet.bandwidth_gbps / cosmos.bandwidth_gbps
        print(f"  depth {depth:2d}: COMET {comet.bandwidth_gbps:6.2f} GB/s, "
              f"COSMOS {cosmos.bandwidth_gbps:6.2f} GB/s, "
              f"ratio {ratios[depth]:.2f}x")

    # The bandwidth advantage holds at every depth (robustness).
    assert all(ratio > 2.0 for ratio in ratios.values())
    # Deeper queues -> more latency on the saturated device.
    cosmos_latency = [results[d][1].avg_latency_ns for d in (2, 8, 32)]
    assert cosmos_latency[0] < cosmos_latency[-1]
