"""Fault injection for the sweep fabric: real daemons, real signals.

The elastic-membership claims in :mod:`repro.sim.fabric` — suspect
detection, dead-host re-dispatch, health-checked re-admission, mid-run
join — are only worth something if they hold against *real* failure
modes, not mocks.  This module is the harness the equivalence tests
and the CI ``fabric-smoke`` job use to prove them:

* :class:`ChaosDaemon` runs ``python -m repro.sim.chaos`` (a thin
  wrapper over the real ``repro.sim serve`` daemon) as a subprocess
  and exposes the faults the fabric must survive: ``sigstop()`` /
  ``sigcont()`` (a wedged-but-listening host: probes time out, the
  fabric suspects it, then recovers it), ``kill()`` (SIGKILL — the
  fabric declares it dead and re-dispatches its queue) and
  ``restart()`` (a fresh process on the same port and store — the
  prober re-admits it mid-run).
* :class:`Blackhole` is a TCP proxy that can drop every connection on
  demand — a transport fault with the daemon itself perfectly healthy
  (the network variant of a dead host), then heal.
* :class:`ChaosSchedule` fires those faults at deterministic points in
  a run — "after N cells completed", with the points and the victim
  drawn from a seeded RNG — so a chaos test is reproducible from its
  seed alone.

Pacing: a fabric run over tiny test cells finishes before any fault
can land mid-run.  ``ChaosDaemon(cell_delay=...)`` sets
``REPRO_CHAOS_CELL_DELAY`` for the subprocess; :func:`chaos_serve_main`
wraps ``engine.evaluate_cell`` with that sleep before delegating to the
real ``serve_main``.  The wrapper changes *when* a cell computes, never
*what* it computes, so bit-identity against a serial ``run_sweep``
still holds — which is exactly what the chaos tests assert.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import SimulationError
from .client import EvalClient

#: Environment variable (seconds, float) read by :func:`chaos_serve_main`:
#: every cell evaluation in the daemon sleeps this long first.
CELL_DELAY_ENV = "REPRO_CHAOS_CELL_DELAY"

#: Seconds to wait for a daemon subprocess to print its ready banner.
READY_TIMEOUT = 30.0


def chaos_serve_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim.chaos`` — the real daemon, paced.

    Identical to ``python -m repro.sim serve`` except that when
    ``REPRO_CHAOS_CELL_DELAY`` is a positive float, every
    ``evaluate_cell`` sleeps that long before computing.  The patch
    lands before the server (and any fork pool) starts, so every
    executor kind inherits it.
    """
    delay = 0.0
    raw = os.environ.get(CELL_DELAY_ENV, "")
    if raw:
        try:
            delay = float(raw)
        except ValueError:
            print(f"error: {CELL_DELAY_ENV}={raw!r} is not a float",
                  file=sys.stderr)
            return 2
    if delay > 0:
        from . import engine

        real_evaluate_cell = engine.evaluate_cell

        def paced_evaluate_cell(task: Any, descriptor: Any = None) -> Any:
            time.sleep(delay)
            return real_evaluate_cell(task, descriptor)

        engine.evaluate_cell = paced_evaluate_cell

    from .server import serve_main

    return serve_main(argv)


class ChaosDaemon:
    """One real evaluation daemon subprocess, with faults on tap.

    Starts ``python -m repro.sim.chaos`` on ``host:port`` (``port=0``
    binds an ephemeral port, learned from the ready banner and *reused
    on restart* so the fabric's re-admission probe finds the reborn
    process at the same address).  Context-manager friendly; always
    :meth:`close` in a finally block — a SIGSTOPped daemon left behind
    outlives the test run.
    """

    def __init__(self, store: Optional[str] = None, workers: int = 1,
                 cell_delay: float = 0.0, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.store = store
        self.workers = workers
        self.cell_delay = cell_delay
        self.host = host
        self.port = port
        self.process: Optional[subprocess.Popen] = None
        self._stopped = False     # SIGSTOP currently in effect
        self.start()

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Spawn the subprocess and wait for its ready banner."""
        if self.process is not None and self.process.poll() is None:
            return
        argv = [sys.executable, "-m", "repro.sim.chaos",
                "--host", self.host, "--port", str(self.port),
                "--workers", str(self.workers)]
        if self.store is not None:
            argv += ["--store", str(self.store)]
        env = dict(os.environ)
        if self.cell_delay > 0:
            env[CELL_DELAY_ENV] = repr(self.cell_delay)
        else:
            env.pop(CELL_DELAY_ENV, None)
        self.process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True)
        self._stopped = False
        deadline = time.monotonic() + READY_TIMEOUT
        assert self.process.stdout is not None
        while True:
            if self.process.poll() is not None:
                stderr = self.process.stderr.read() \
                    if self.process.stderr else ""
                raise SimulationError(
                    f"chaos daemon exited during startup "
                    f"(rc {self.process.returncode}): {stderr.strip()}")
            if time.monotonic() > deadline:
                self.kill()
                raise SimulationError(
                    f"chaos daemon did not become ready within "
                    f"{READY_TIMEOUT}s")
            line = self.process.stdout.readline()
            if line.startswith("ready: http://"):
                self.port = int(line.strip().rsplit(":", 1)[1])
                return

    def restart(self) -> None:
        """A fresh process on the same port (and store): the rebirth
        half of the SIGKILL → dead → rejoining → alive arc."""
        self.kill()
        self.start()

    def close(self) -> None:
        """Terminate and reap, whatever state the process is in."""
        if self.process is None:
            return
        if self.process.poll() is None:
            if self._stopped:
                # SIGTERM/SIGKILL do not reap a stopped process until
                # it is continued.
                self.sigcont()
            self.process.kill()
            self.process.wait(timeout=10)
        for stream in (self.process.stdout, self.process.stderr):
            if stream is not None:
                stream.close()

    def __enter__(self) -> "ChaosDaemon":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- faults -------------------------------------------------------------

    def sigstop(self) -> None:
        """Freeze the daemon: the kernel still accepts TCP connections
        on its behalf (the listen backlog), but nothing answers — the
        exact shape of a wedged host, which is what drives the fabric's
        ``alive → suspect`` probe-timeout path."""
        assert self.process is not None
        os.kill(self.process.pid, signal.SIGSTOP)
        self._stopped = True

    def sigcont(self) -> None:
        """Thaw a frozen daemon (``suspect → alive`` on the next
        probe)."""
        assert self.process is not None
        os.kill(self.process.pid, signal.SIGCONT)
        self._stopped = False

    def kill(self) -> None:
        """SIGKILL — no shutdown handshake, in-flight requests die with
        the process (``→ dead`` plus re-dispatch on the coordinator)."""
        if self.process is None:
            return
        if self.process.poll() is None:
            if self._stopped:
                self.sigcont()
            self.process.kill()
            self.process.wait(timeout=10)

    # -- observation --------------------------------------------------------

    def stats(self, timeout: float = 10.0) -> Dict[str, Any]:
        """The daemon's ``/stats`` snapshot (raises if unreachable)."""
        return EvalClient(self.address, timeout=timeout, retries=0).stats()

    def ping(self, timeout: float = 5.0) -> bool:
        return EvalClient(self.address, timeout=timeout, retries=0).ping()


class Blackhole:
    """A TCP proxy that can swallow every connection on demand.

    Point fabric clients at :attr:`address` instead of the daemon.
    While :meth:`engage`\\ d, established connections are severed and
    new ones are accepted and immediately closed — the coordinator sees
    pure transport failures while the daemon behind the proxy stays
    healthy.  :meth:`heal` restores pass-through, after which the
    fabric's prober re-admits the "host".
    """

    def __init__(self, upstream_port: int,
                 upstream_host: str = "127.0.0.1") -> None:
        self.upstream = (upstream_host, upstream_port)
        self._engaged = False
        self._closing = False
        self._lock = threading.Lock()
        self._conns: List[socket.socket] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="blackhole-accept", daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def engage(self) -> None:
        """Start dropping: sever live connections, reject new ones."""
        with self._lock:
            self._engaged = True
            conns, self._conns = self._conns, []
        for conn in conns:
            _quiet_close(conn)

    def heal(self) -> None:
        """Back to pass-through for *new* connections."""
        with self._lock:
            self._engaged = False

    def close(self) -> None:
        self._closing = True
        _quiet_close(self._listener)
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            _quiet_close(conn)
        self._accept_thread.join(timeout=5)

    def __enter__(self) -> "Blackhole":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return    # listener closed
            with self._lock:
                engaged = self._engaged
            if engaged:
                # Accept-then-slam: the client sees a clean transport
                # failure (connection reset/closed), not a hang.
                _quiet_close(client)
                continue
            try:
                upstream = socket.create_connection(self.upstream,
                                                    timeout=10)
            except OSError:
                _quiet_close(client)
                continue
            with self._lock:
                if self._engaged or self._closing:
                    _quiet_close(client)
                    _quiet_close(upstream)
                    continue
                self._conns += [client, upstream]
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(target=self._pump, args=(src, dst),
                                 name="blackhole-pump", daemon=True).start()

    @staticmethod
    def _pump(src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            _quiet_close(src)
            _quiet_close(dst)


def _quiet_close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: fire ``kind`` on daemon ``target`` once at
    least ``after_completed`` cells have finished."""

    after_completed: int
    kind: str       # an action name: "kill", "restart", "join", ...
    target: int = 0


class ChaosSchedule:
    """Deterministic fault injection keyed to run progress.

    Wall-clock scheduling makes chaos tests flaky (a loaded CI box
    shifts every timing); completion counts do not.  Events fire in
    order once ``progress()`` (typically the count of ``on_result``
    callbacks) reaches each threshold, from a watcher thread so the
    coordinator's event loop never blocks on a ~1 s daemon restart.
    :attr:`fired` records what actually ran, for test assertions.
    """

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self.events = sorted(events, key=lambda e: e.after_completed)
        self.fired: List[ChaosEvent] = []
        self.errors: List[BaseException] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def seeded(cls, seed: int, num_cells: int,
               num_daemons: int) -> "ChaosSchedule":
        """The canonical schedule the equivalence tests pin: one
        SIGKILL of a seeded victim early in the run, its restart (→
        re-admission) shortly after, and one mid-run join — thresholds
        and victim drawn from ``random.Random(seed)`` only, so the same
        seed replays the same chaos."""
        if num_cells < 4 or num_daemons < 1:
            raise SimulationError(
                "seeded chaos needs >= 4 cells and >= 1 daemon")
        rng = random.Random(seed)
        victim = rng.randrange(num_daemons)
        kill_at = rng.randint(1, max(1, num_cells // 4))
        restart_at = kill_at + rng.randint(1, 2)
        join_at = rng.randint(2, max(2, num_cells // 3))
        return cls([
            ChaosEvent(kill_at, "kill", victim),
            ChaosEvent(restart_at, "restart", victim),
            ChaosEvent(join_at, "join"),
        ])

    def run_in_thread(self, progress: Callable[[], int],
                      actions: Dict[str, Callable[[int], None]],
                      poll: float = 0.02) -> None:
        """Start the watcher.  ``actions[kind](target)`` runs in the
        watcher thread; an action raising is recorded in
        :attr:`errors` (and re-checked by the test), never swallowed
        into a hang."""
        def watch() -> None:
            queue = list(self.events)
            while queue and not self._stop.is_set():
                if progress() >= queue[0].after_completed:
                    event = queue.pop(0)
                    try:
                        actions[event.kind](event.target)
                    except BaseException as error:   # noqa: BLE001
                        self.errors.append(error)
                        return
                    self.fired.append(event)
                else:
                    self._stop.wait(poll)

        self._thread = threading.Thread(target=watch, name="chaos-watch",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the watcher and surface any action error."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        if self.errors:
            raise SimulationError(
                f"chaos action failed: {self.errors[0]!r}") \
                from self.errors[0]


if __name__ == "__main__":    # pragma: no cover - exercised by ChaosDaemon
    sys.exit(chaos_serve_main())
