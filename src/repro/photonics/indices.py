"""Refractive indices of the passive platform materials near 1550 nm.

Sellmeier-grade dispersion is unnecessary for the quantities the paper
extracts (contrast ratios, confinement trends), so the platform materials
use constant indices at their 1550 nm values; the PCM itself carries full
Lorentz dispersion (see :mod:`repro.materials`).
"""

from __future__ import annotations

#: Crystalline silicon, 1550 nm.
SILICON_INDEX = 3.476

#: Thermal SiO2 (BOX and cladding), 1550 nm.
SILICA_INDEX = 1.444

#: Stoichiometric Si3N4, 1550 nm (used for the Si-vs-SiN platform argument).
SILICON_NITRIDE_INDEX = 1.996

#: Air cladding.
AIR_INDEX = 1.0
