"""Synthetic SPEC-like memory trace generators.

The paper drives its evaluation with SPEC benchmark memory traces [32].
Those traces are not redistributable, so each emulated workload is a
deterministic stochastic model of its post-LLC main-memory traffic, with
the three knobs that dominate main-memory behaviour:

* **intensity** — mean request inter-arrival (memory-bound vs compute-bound),
* **read fraction** — load/store balance after write-back filtering,
* **locality** — probability the next line continues a sequential run
  (row-buffer friendliness), with the remainder drawn from a working set.

The eight presets span the SPEC CPU mix the memory-systems literature
typically quotes: pointer-chasing (mcf), streaming stencil (lbm),
stream-read (libquantum), lattice QCD (milc), discrete-event simulation
(omnetpp), compiler (gcc), dense-flow solver (bwaves), and EM solver
(GemsFDTD).  The *relative* architecture rankings of Fig. 9 — which is
what the reproduction must preserve — depend on intensity/mix spread, not
on instruction-accurate traces (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import TraceError
from .request import MemRequest, OpType


@dataclass(frozen=True)
class SyntheticWorkload:
    """Parameter set of one emulated SPEC workload."""

    name: str
    mean_interarrival_ns: float
    read_fraction: float
    sequential_probability: float
    working_set_bytes: int
    line_bytes: int = 128

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0.0:
            raise TraceError("inter-arrival must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise TraceError("read fraction must be in [0, 1]")
        if not 0.0 <= self.sequential_probability < 1.0:
            raise TraceError("sequential probability must be in [0, 1)")
        if self.working_set_bytes < self.line_bytes:
            raise TraceError("working set smaller than one line")

    @property
    def working_set_lines(self) -> int:
        return self.working_set_bytes // self.line_bytes

    def generate(self, num_requests: int, seed: int = 1) -> List[MemRequest]:
        """Generate a deterministic request list for this workload."""
        if num_requests <= 0:
            raise TraceError("need at least one request")
        rng = np.random.RandomState(seed)
        gaps = rng.exponential(self.mean_interarrival_ns, size=num_requests)
        arrivals = np.cumsum(gaps)
        is_read = rng.random_sample(num_requests) < self.read_fraction
        sequential = rng.random_sample(num_requests) < self.sequential_probability
        random_lines = rng.randint(0, self.working_set_lines, size=num_requests)

        requests: List[MemRequest] = []
        line = int(random_lines[0])
        for i in range(num_requests):
            if sequential[i] and requests:
                line = (line + 1) % self.working_set_lines
            else:
                line = int(random_lines[i])
            requests.append(MemRequest(
                address=line * self.line_bytes,
                op=OpType.READ if is_read[i] else OpType.WRITE,
                arrival_ns=float(arrivals[i]),
                size_bytes=self.line_bytes,
            ))
        return requests


#: The eight Fig. 9 workload presets.  Post-LLC main-memory traffic is
#: read-dominated (the writes are write-backs) and, for the memory-bound
#: SPEC members the paper's evaluation targets, intense enough to saturate
#: the memory system — that is the regime where Fig. 9 separates the
#: architectures.
SPEC_WORKLOADS: Dict[str, SyntheticWorkload] = {
    "mcf": SyntheticWorkload(
        name="mcf", mean_interarrival_ns=2.0, read_fraction=0.88,
        sequential_probability=0.05, working_set_bytes=512 * 2**20,
    ),
    "lbm": SyntheticWorkload(
        name="lbm", mean_interarrival_ns=2.5, read_fraction=0.62,
        sequential_probability=0.85, working_set_bytes=384 * 2**20,
    ),
    "libquantum": SyntheticWorkload(
        name="libquantum", mean_interarrival_ns=3.0, read_fraction=0.97,
        sequential_probability=0.92, working_set_bytes=64 * 2**20,
    ),
    "milc": SyntheticWorkload(
        name="milc", mean_interarrival_ns=4.0, read_fraction=0.85,
        sequential_probability=0.45, working_set_bytes=256 * 2**20,
    ),
    "omnetpp": SyntheticWorkload(
        name="omnetpp", mean_interarrival_ns=6.0, read_fraction=0.86,
        sequential_probability=0.12, working_set_bytes=128 * 2**20,
    ),
    "gcc": SyntheticWorkload(
        name="gcc", mean_interarrival_ns=10.0, read_fraction=0.90,
        sequential_probability=0.35, working_set_bytes=96 * 2**20,
    ),
    "bwaves": SyntheticWorkload(
        name="bwaves", mean_interarrival_ns=2.5, read_fraction=0.80,
        sequential_probability=0.75, working_set_bytes=448 * 2**20,
    ),
    "gemsfdtd": SyntheticWorkload(
        name="gemsfdtd", mean_interarrival_ns=3.5, read_fraction=0.82,
        sequential_probability=0.55, working_set_bytes=320 * 2**20,
    ),
}


def generate_trace(
    workload_name: str, num_requests: int = 20_000, seed: int = 1
) -> List[MemRequest]:
    """Generate the canonical trace of one named workload."""
    try:
        workload = SPEC_WORKLOADS[workload_name]
    except KeyError:
        raise TraceError(
            f"unknown workload {workload_name!r}; known: {sorted(SPEC_WORKLOADS)}"
        ) from None
    return workload.generate(num_requests, seed=seed)
