"""Experiment registry: one module per paper table/figure.

Each experiment module exposes a ``run()`` returning a plain result object
and a ``main()`` that prints the same rows/series the paper plots.  The
registry maps experiment ids ("fig3", "table2", ...) to those runners so
benches, tests and the command line all share one entry point:

    python -m repro.exp fig9
"""

from .registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
