"""DRAM baselines: 2D and 3D DDR3/DDR4 (paper Fig. 9 comparisons).

Timing follows the JEDEC speed grades (DDR3-1600 CL11, DDR4-2400 CL17);
energy uses DIMM-level numbers in the DRAMPower/Micron-power-calculator
ballpark for an 8 GB module: a constant background (including peripheral
and I/O idle), a per-line dynamic energy (activate + read/write + I/O) and
a refresh energy per all-bank refresh.

The 3D variants model 3DS TSV-stacked DDR parts on a standard channel
(the paper's "3D configurations of DDR3 and DDR4"): same channel bus,
twice the banks, ~30 % lower core latencies from the shorter global
wiring, and substantially cheaper per-bit energy because most of the data
movement stays inside the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError


@dataclass(frozen=True)
class DramConfig:
    """One DRAM device/DIMM model."""

    name: str
    banks: int
    line_bytes: int
    t_rcd_ns: float          # row activate
    t_rp_ns: float           # precharge
    t_cas_ns: float          # column access
    t_wr_ns: float           # write recovery
    data_burst_ns: float     # line transfer on the data bus
    row_size_bytes: int      # row-buffer (page) size
    t_refi_ns: float         # refresh interval
    t_rfc_ns: float          # refresh cycle time
    interface_delay_ns: float
    background_power_w: float
    dynamic_energy_per_line_j: float
    refresh_energy_j: float
    shared_bus: bool = True
    page_policy: str = "open"

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ConfigError("banks must be positive")
        if self.page_policy not in ("open", "closed"):
            raise ConfigError("page policy must be 'open' or 'closed'")
        for field_name in ("t_rcd_ns", "t_rp_ns", "t_cas_ns", "data_burst_ns",
                           "t_refi_ns", "t_rfc_ns"):
            if getattr(self, field_name) <= 0.0:
                raise ConfigError(f"{field_name} must be positive")

    @property
    def row_miss_read_ns(self) -> float:
        """Closed-row read: precharge + activate + CAS."""
        return self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns

    @property
    def row_hit_read_ns(self) -> float:
        """Open-row read: CAS only."""
        return self.t_cas_ns

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the device is refreshing."""
        return self.t_rfc_ns / self.t_refi_ns


#: DDR3-1600 (CL11-11-11), 8 GB UDIMM, x64 channel.
_DDR3_2D = DramConfig(
    name="2D_DDR3",
    banks=8,
    line_bytes=128,
    t_rcd_ns=13.75,
    t_rp_ns=13.75,
    t_cas_ns=13.75,
    t_wr_ns=15.0,
    data_burst_ns=10.0,          # 128 B over a 64-bit 1600 MT/s bus
    row_size_bytes=8192,
    t_refi_ns=7800.0,
    t_rfc_ns=260.0,
    interface_delay_ns=12.0,
    background_power_w=1.8,
    dynamic_energy_per_line_j=30e-9,
    refresh_energy_j=60e-9,
)

#: DDR4-2400 (CL17), 8 GB UDIMM.
_DDR4_2D = DramConfig(
    name="2D_DDR4",
    banks=16,
    line_bytes=128,
    t_rcd_ns=14.16,
    t_rp_ns=14.16,
    t_cas_ns=14.16,
    t_wr_ns=15.0,
    data_burst_ns=6.67,          # 128 B over a 64-bit 2400 MT/s bus
    row_size_bytes=8192,
    t_refi_ns=7800.0,
    t_rfc_ns=350.0,
    interface_delay_ns=12.0,
    background_power_w=1.1,
    dynamic_energy_per_line_j=20e-9,
    refresh_energy_j=70e-9,
)

#: 3DS-stacked DDR3 part: same channel bus, 2x banks, faster core.
_DDR3_3D = DramConfig(
    name="3D_DDR3",
    banks=16,
    line_bytes=128,
    t_rcd_ns=10.0,
    t_rp_ns=10.0,
    t_cas_ns=10.0,
    t_wr_ns=12.0,
    data_burst_ns=10.0,          # 128 B over the same 64-bit 1600 MT/s bus
    row_size_bytes=8192,
    t_refi_ns=7800.0,
    t_rfc_ns=260.0,
    interface_delay_ns=8.0,
    background_power_w=0.9,
    dynamic_energy_per_line_j=8e-9,
    refresh_energy_j=50e-9,
)

#: 3DS-stacked DDR4 part (the paper's best electronic platform).
_DDR4_3D = DramConfig(
    name="3D_DDR4",
    banks=32,
    line_bytes=128,
    t_rcd_ns=9.0,
    t_rp_ns=9.0,
    t_cas_ns=9.0,
    t_wr_ns=10.0,
    data_burst_ns=6.67,          # 128 B over the same 64-bit 2400 MT/s bus
    row_size_bytes=8192,
    t_refi_ns=7800.0,
    t_rfc_ns=350.0,
    interface_delay_ns=8.0,
    background_power_w=0.7,
    dynamic_energy_per_line_j=6e-9,
    refresh_energy_j=55e-9,
)

DRAM_CONFIGS: Dict[str, DramConfig] = {
    cfg.name: cfg for cfg in (_DDR3_2D, _DDR4_2D, _DDR3_3D, _DDR4_3D)
}


def dram_config(name: str) -> DramConfig:
    """Look up a DRAM baseline by its Fig. 9 label."""
    try:
        return DRAM_CONFIGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown DRAM config {name!r}; known: {sorted(DRAM_CONFIGS)}"
        ) from None
