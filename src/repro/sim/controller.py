"""Memory controller: per-bank FCFS scheduling with bus and refresh.

The controller models what the paper's modified NVMain provides at the
granularity the evaluation needs:

* per-bank service with line-interleaved bank mapping (Section III.C),
* open-row tracking for DRAM devices (row hit vs miss timing),
* a shared data bus for electrical devices — photonic devices carry each
  bank on its own MDM mode, so their bursts do not contend,
* periodic all-bank refresh windows for DRAM,
* per-operation energy, gated active power (photonic laser/SOA only burn
  while serving), and background power.

Scheduling is FCFS per bank with banks progressing independently — the
bank-level parallelism that dominates these comparisons.  (NVMain's
FR-FCFS reordering mainly improves DRAM row hits; our traces model
locality directly, so FCFS keeps the comparison symmetric and simple.)

The hot path is split in two: everything without a cross-request timing
dependency (bank/row mapping, open-row hit detection, array service
times, per-op energy) is precomputed with numpy in one vectorized pass,
and only the irreducibly sequential recurrence — queue admission, bank
free times, bus ordering, refresh windows — runs as a slim scalar loop
over plain Python floats.  ``run_reference`` keeps the original
per-request object loop as the semantics oracle for equivalence tests
and benchmarks; both paths produce identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .devices import MemoryDeviceModel
from .request import MemRequest
from .stats import SimStats
from .tracegen import TraceArrays

#: Transaction-queue entries each channel contributes (NVMain-style
#: per-channel queues; the controller sees their sum).
QUEUE_DEPTH_PER_CHANNEL = 8


@dataclass
class _BankState:
    free_at_ns: float = 0.0
    open_row: Optional[int] = None
    busy_ns: float = 0.0


@dataclass(frozen=True)
class _Schedule:
    """Per-request service times plus schedule-wide aggregates."""

    admitted_ns: np.ndarray
    start_ns: np.ndarray
    finish_ns: np.ndarray
    completion_ns: np.ndarray
    busy_ns: float
    row_hits: int
    row_misses: int


class MemoryController:
    """Executes a request stream against one device model.

    ``queue_depth`` models NVMain's finite transaction queue: at most that
    many requests are in flight; when the queue is full, later trace
    arrivals stall (throttled open loop), which is how the real simulator
    stretches execution time on slow memories instead of growing an
    unbounded queue.
    """

    DEFAULT_QUEUE_DEPTH = 32

    def __init__(self, device: MemoryDeviceModel,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if queue_depth < 1:
            raise SimulationError("queue depth must be at least 1")
        self.device = device
        self.queue_depth = queue_depth

    # ------------------------------------------------------------------
    # vectorized hot path

    def run(
        self,
        requests: List[MemRequest],
        workload_name: str = "trace",
    ) -> SimStats:
        """Simulate all requests (must be arrival-ordered); returns stats.

        Fills each request's service fields (``start_ns``, ``finish_ns``,
        ``completion_ns``) and replaces ``arrival_ns`` with the queue
        admission time, exactly like the reference path.
        """
        if not requests:
            raise SimulationError("empty request stream")
        addresses = np.array([r.address for r in requests], dtype=np.int64)
        is_read = np.array([r.is_read for r in requests], dtype=bool)
        arrivals = np.array([r.arrival_ns for r in requests], dtype=np.float64)
        schedule = self._schedule(addresses, is_read, arrivals)

        starts = schedule.start_ns.tolist()
        finishes = schedule.finish_ns.tolist()
        completions = schedule.completion_ns.tolist()
        admitted = schedule.admitted_ns.tolist()
        for i, request in enumerate(requests):
            request.start_ns = starts[i]
            request.finish_ns = finishes[i]
            request.completion_ns = completions[i]
            # Latency is measured from queue admission (NVMain convention):
            # time stalled outside a full transaction queue is application
            # back-pressure, not memory latency.
            request.arrival_ns = admitted[i]
        total_bytes = sum(r.size_bytes for r in requests)
        return self._stats(workload_name, is_read, total_bytes, schedule)

    def run_arrays(self, trace: TraceArrays,
                   workload_name: Optional[str] = None) -> SimStats:
        """Simulate a column-store trace without materializing requests.

        The fast path of the evaluation engine: identical stats to
        ``run(trace.to_requests())``, but no per-request objects are
        created or mutated (the input arrays are read-only).
        """
        schedule = self._schedule(
            np.asarray(trace.addresses, dtype=np.int64),
            np.asarray(trace.is_read, dtype=bool),
            np.asarray(trace.arrivals_ns, dtype=np.float64),
        )
        return self._stats(
            workload_name if workload_name is not None else trace.name,
            np.asarray(trace.is_read, dtype=bool),
            trace.total_bytes,
            schedule,
        )

    # ------------------------------------------------------------------

    def _schedule(self, addresses: np.ndarray, is_read: np.ndarray,
                  arrivals: np.ndarray) -> _Schedule:
        """Compute the full service schedule of one arrival-ordered trace."""
        n = len(addresses)
        if n == 0:
            raise SimulationError("empty request stream")
        if np.any(np.diff(arrivals) < 0.0):
            raise SimulationError("requests must be sorted by arrival")
        device = self.device
        bank_idx, array_ns, row_hits, row_misses = \
            self._precompute(addresses, is_read)

        # --- the sequential recurrence, on plain Python floats ---------
        arrivals_l = arrivals.tolist()
        bank_l = bank_idx.tolist()
        array_l = array_ns.tolist()
        read_l = is_read.tolist()
        queue_depth = self.queue_depth
        bank_free = [0.0] * device.banks
        bank_busy = [0.0] * device.banks
        shared_bus = device.shared_bus
        turnaround = device.bus_turnaround_ns
        burst_ns = device.data_burst_ns
        overlap = device.burst_overlaps_array
        refresh = device.refresh
        has_refresh = refresh is not None
        refresh_interval = refresh.interval_ns if has_refresh else 0.0
        refresh_duration = refresh.duration_ns if has_refresh else 0.0
        bus_free = 0.0
        bus_last_was_read: Optional[bool] = None
        admitted_l = [0.0] * n
        start_l = [0.0] * n
        finish_l = [0.0] * n

        for i in range(n):
            admitted = arrivals_l[i]
            if i >= queue_depth:
                # Transaction queue full until an older request finishes.
                blocked_until = finish_l[i - queue_depth]
                if blocked_until > admitted:
                    admitted = blocked_until
            bank = bank_l[i]
            start = bank_free[bank]
            if admitted > start:
                start = admitted
            if has_refresh:
                position = start % refresh_interval
                if position < refresh_duration:
                    start = start - position + refresh_duration
            array_time = array_l[i]
            burst_start = start + array_time
            if shared_bus:
                bus_ready = bus_free
                if bus_last_was_read is not None \
                        and bus_last_was_read != read_l[i]:
                    bus_ready += turnaround
                if bus_ready > burst_start:
                    burst_start = bus_ready
                if has_refresh:
                    position = burst_start % refresh_interval
                    if position < refresh_duration:
                        burst_start = burst_start - position + refresh_duration
            finish = burst_start + burst_ns
            if shared_bus:
                bus_free = finish
                bus_last_was_read = read_l[i]
            bank_release = finish
            if overlap:
                array_done = start + array_time
                bank_release = array_done if array_done > burst_start \
                    else burst_start
            bank_busy[bank] += bank_release - start
            bank_free[bank] = bank_release
            admitted_l[i] = admitted
            start_l[i] = start
            finish_l[i] = finish

        finish_arr = np.asarray(finish_l)
        return _Schedule(
            admitted_ns=np.asarray(admitted_l),
            start_ns=np.asarray(start_l),
            finish_ns=finish_arr,
            completion_ns=finish_arr + device.interface_delay_ns,
            busy_ns=sum(bank_busy),
            row_hits=row_hits,
            row_misses=row_misses,
        )

    def _precompute(
        self, addresses: np.ndarray, is_read: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """Vectorized bank mapping, open-row hits and array service times."""
        device = self.device
        n = len(addresses)
        row_buffer = device.row_buffer
        if row_buffer is None:
            bank_idx = (addresses // device.line_bytes) % device.banks
            array_ns = np.where(is_read,
                                float(device.read_occupancy_ns),
                                float(device.write_occupancy_ns))
            return bank_idx, array_ns, 0, 0

        bank_idx = (addresses // row_buffer.row_size_bytes) % device.banks
        rows = addresses // (row_buffer.row_size_bytes * device.banks)
        if row_buffer.is_open_page:
            # A request hits iff the previous access to its bank opened the
            # same row — a pure data dependency, so it vectorizes: group by
            # bank (stable sort) and compare neighbours.
            order = np.argsort(bank_idx, kind="stable")
            bank_sorted = bank_idx[order]
            row_sorted = rows[order]
            hit_sorted = np.zeros(n, dtype=bool)
            hit_sorted[1:] = (bank_sorted[1:] == bank_sorted[:-1]) \
                & (row_sorted[1:] == row_sorted[:-1])
            row_hit = np.empty(n, dtype=bool)
            row_hit[order] = hit_sorted
        else:
            row_hit = np.zeros(n, dtype=bool)   # auto-precharged
        array_ns = np.where(
            row_hit,
            np.where(is_read,
                     row_buffer.service_ns(True, True),
                     row_buffer.service_ns(True, False)),
            np.where(is_read,
                     row_buffer.service_ns(False, True),
                     row_buffer.service_ns(False, False)),
        )
        if device.write_occupancy_ns is not None:
            # Fixed write occupancy overrides the row-buffer path (COSMOS:
            # reads hit/miss the subarray buffer, writes always pay the
            # full erase-plus-program pulse train).
            array_ns = np.where(is_read, array_ns,
                                float(device.write_occupancy_ns))
        row_hits = int(np.count_nonzero(row_hit))
        return bank_idx, array_ns, row_hits, n - row_hits

    def _stats(self, workload_name: str, is_read: np.ndarray,
               total_bytes: int, schedule: _Schedule) -> SimStats:
        """Assemble SimStats from a computed schedule."""
        device = self.device
        n = len(schedule.finish_ns)
        first_arrival = float(schedule.admitted_ns[0])
        last_completion = float(schedule.completion_ns.max())
        sim_time = max(last_completion - first_arrival, 1e-9)
        busy = schedule.busy_ns
        # Active power (photonic laser/SOA) is gated per accessed bank, so
        # the device-wide active power scales with the busy-bank fraction —
        # unless the device opts out of gating (always-on laser rail).
        if device.energy.gate_active_power:
            active = min(sim_time, busy / device.banks)
        else:
            active = sim_time

        refresh_count = 0
        refresh_energy = 0.0
        if device.refresh is not None:
            refresh_count = int(sim_time // device.refresh.interval_ns)
            refresh_energy = refresh_count * device.refresh.energy_j

        reads = int(np.count_nonzero(is_read))
        writes = n - reads
        op_energy = reads * device.energy.read_energy_j \
            + writes * device.energy.write_energy_j
        latencies = schedule.completion_ns - schedule.admitted_ns
        return SimStats(
            device_name=device.name,
            workload_name=workload_name,
            num_requests=n,
            num_reads=reads,
            num_writes=writes,
            total_bytes=total_bytes,
            sim_time_ns=sim_time,
            busy_time_ns=busy,
            active_time_ns=active,
            latencies_ns=latencies.tolist(),
            op_energy_j=op_energy,
            refresh_energy_j=refresh_energy,
            refresh_count=refresh_count,
            background_power_w=device.energy.background_power_w,
            active_power_w=device.energy.active_power_w,
            row_hits=schedule.row_hits,
            row_misses=schedule.row_misses,
        )

    # ------------------------------------------------------------------
    # reference scalar path (semantics oracle)

    def run_reference(
        self,
        requests: List[MemRequest],
        workload_name: str = "trace",
    ) -> SimStats:
        """The original per-request object loop, kept verbatim.

        Equivalence tests pin the vectorized path against this, and the
        parallel-evaluation benchmark uses it as the legacy baseline.
        """
        if not requests:
            raise SimulationError("empty request stream")
        device = self.device
        banks = [_BankState() for _ in range(device.banks)]
        bus_free_ns = 0.0
        bus_last_was_read: Optional[bool] = None
        op_energy = 0.0
        row_hits = 0
        row_misses = 0
        last_arrival = -1.0
        finish_times: List[float] = []

        for index, request in enumerate(requests):
            if request.arrival_ns < last_arrival:
                raise SimulationError("requests must be sorted by arrival")
            last_arrival = request.arrival_ns

            bank_index = device.bank_of(request)
            bank = banks[bank_index]

            admitted = request.arrival_ns
            if index >= self.queue_depth:
                # Transaction queue full until an older request finishes.
                admitted = max(admitted, finish_times[index - self.queue_depth])

            start = max(admitted, bank.free_at_ns)
            start = self._skip_refresh(start)

            row_hit = False
            if device.row_buffer is not None:
                row = device.row_of(request)
                if device.row_buffer.is_open_page:
                    row_hit = bank.open_row == row
                    bank.open_row = row
                else:
                    bank.open_row = None   # auto-precharged
                if row_hit:
                    row_hits += 1
                else:
                    row_misses += 1

            array_ns = device.array_time_ns(request, row_hit)
            burst_start = start + array_ns
            if device.shared_bus:
                bus_ready = bus_free_ns
                if (bus_last_was_read is not None
                        and bus_last_was_read != request.is_read):
                    bus_ready += device.bus_turnaround_ns
                burst_start = max(burst_start, bus_ready)
                burst_start = self._skip_refresh(burst_start)
            finish = burst_start + device.data_burst_ns
            if device.shared_bus:
                bus_free_ns = finish
                bus_last_was_read = request.is_read

            bank_release = finish
            if device.burst_overlaps_array:
                bank_release = max(start + array_ns, burst_start)
            bank.busy_ns += bank_release - start
            bank.free_at_ns = bank_release
            finish_times.append(finish)

            request.start_ns = start
            request.finish_ns = finish
            request.completion_ns = finish + device.interface_delay_ns
            # Latency is measured from queue admission (NVMain convention).
            request.arrival_ns = admitted
            op_energy += device.op_energy_j(request)

        first_arrival = requests[0].arrival_ns
        last_completion = max(r.completion_ns for r in requests)
        sim_time = max(last_completion - first_arrival, 1e-9)
        busy = sum(b.busy_ns for b in banks)
        if device.energy.gate_active_power:
            active = min(sim_time, busy / device.banks)
        else:
            active = sim_time

        refresh_count = 0
        refresh_energy = 0.0
        if device.refresh is not None:
            refresh_count = int(sim_time // device.refresh.interval_ns)
            refresh_energy = refresh_count * device.refresh.energy_j

        reads = sum(1 for r in requests if r.is_read)
        return SimStats(
            device_name=device.name,
            workload_name=workload_name,
            num_requests=len(requests),
            num_reads=reads,
            num_writes=len(requests) - reads,
            total_bytes=sum(r.size_bytes for r in requests),
            sim_time_ns=sim_time,
            busy_time_ns=busy,
            active_time_ns=active,
            latencies_ns=[r.latency_ns for r in requests],
            op_energy_j=op_energy,
            refresh_energy_j=refresh_energy,
            refresh_count=refresh_count,
            background_power_w=device.energy.background_power_w,
            active_power_w=device.energy.active_power_w,
            row_hits=row_hits,
            row_misses=row_misses,
        )

    # ------------------------------------------------------------------

    def _skip_refresh(self, time_ns: float) -> float:
        """Push a start time out of any refresh window it lands in."""
        refresh = self.device.refresh
        if refresh is None:
            return time_ns
        position = time_ns % refresh.interval_ns
        if position < refresh.duration_ns:
            return time_ns - position + refresh.duration_ns
        return time_ns
