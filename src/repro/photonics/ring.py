"""Add-drop microring resonator model with EO and thermal tuning.

COMET gates every GST cell with a pair of microrings (Fig. 5(b)): switching
a ring into resonance grants the column wavelength access to the cell.
The paper uses 6 um-radius rings [36] and *electro-optic* (carrier
injection) tuning for its 2 ns access latency, accepting the higher
through/drop losses of an EO-tuned ring (Table I) over the us-scale
latency of thermal tuning (the choice Section II.B argues).

The transmission model is the standard add-drop ring response:

    T_through(phi) = (t2^2 a^2 - 2 t1 t2 a cos(phi) + t1^2) / D
    T_drop(phi)    = (1 - t1^2)(1 - t2^2) a / D
    D              = 1 - 2 t1 t2 a cos(phi) + (t1 t2 a)^2

with self-coupling coefficients ``t1``/``t2``, single-pass amplitude ``a``
and round-trip phase ``phi = 2*pi*n_eff*L / lambda``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from ..units import db_to_linear, linear_to_db

ArrayLike = Union[float, np.ndarray]


class TuningMechanism(enum.Enum):
    """How a ring's resonance is shifted."""

    ELECTRO_OPTIC = "electro-optic"   # carrier injection, ns-scale
    THERMAL = "thermal"               # heater, us-scale


@dataclass(frozen=True)
class RingTuningModel:
    """Latency/power/loss bundle for one tuning mechanism (Table I values)."""

    mechanism: TuningMechanism
    latency_s: float
    power_w_per_nm: float
    through_loss_db: float
    drop_loss_db: float

    @classmethod
    def from_parameters(
        cls, mechanism: TuningMechanism, params: OpticalParameters = TABLE_I
    ) -> "RingTuningModel":
        if mechanism is TuningMechanism.ELECTRO_OPTIC:
            return cls(
                mechanism=mechanism,
                latency_s=params.eo_tuning_latency_s,
                power_w_per_nm=params.eo_tuning_power_w_per_nm,
                through_loss_db=params.eo_mr_through_loss_db,
                drop_loss_db=params.eo_mr_drop_loss_db,
            )
        return cls(
            mechanism=mechanism,
            latency_s=params.thermal_tuning_latency_s,
            power_w_per_nm=params.thermal_tuning_power_w_per_nm,
            through_loss_db=params.mr_through_loss_db,
            drop_loss_db=params.mr_drop_loss_db,
        )

    def tuning_power_w(self, shift_nm: float) -> float:
        """Electrical power to hold a resonance shift of ``shift_nm``."""
        if shift_nm < 0.0:
            raise ConfigError("resonance shift must be non-negative")
        return self.power_w_per_nm * shift_nm


@dataclass(frozen=True)
class MicroringResonator:
    """A single add-drop microring.

    Defaults follow the paper: 6 um radius [36], SOI group index ~4.2.
    """

    radius_m: float = 6e-6
    effective_index: float = 2.35
    group_index: float = 4.2
    self_coupling_t1: float = 0.93
    self_coupling_t2: float = 0.93
    round_trip_loss_db: float = 0.05
    resonance_wavelength_m: float = 1550e-9

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ConfigError("ring radius must be positive")
        for t in (self.self_coupling_t1, self.self_coupling_t2):
            if not 0.0 < t < 1.0:
                raise ConfigError("self-coupling coefficients must be in (0, 1)")

    # -- geometry-derived quantities ----------------------------------------

    @property
    def circumference_m(self) -> float:
        return 2.0 * math.pi * self.radius_m

    @property
    def free_spectral_range_m(self) -> float:
        """FSR = lambda^2 / (n_g * L) near the reference resonance."""
        return (self.resonance_wavelength_m ** 2
                / (self.group_index * self.circumference_m))

    @property
    def single_pass_amplitude(self) -> float:
        """Round-trip field amplitude ``a`` from the round-trip loss."""
        return math.sqrt(db_to_linear(-self.round_trip_loss_db))

    def quality_factor(self) -> float:
        """Loaded Q from the FWHM of the drop response."""
        fwhm = self.linewidth_m()
        return self.resonance_wavelength_m / fwhm

    def linewidth_m(self) -> float:
        """FWHM linewidth of the resonance (analytic for the all-pass form)."""
        a = self.single_pass_amplitude
        t1, t2 = self.self_coupling_t1, self.self_coupling_t2
        # FWHM in round-trip phase, standard result.
        num = 2.0 * (1.0 - t1 * t2 * a)
        den = math.sqrt(t1 * t2 * a)
        dphi = 2.0 * math.asin(min(1.0, num / (2.0 * den)))
        return dphi * self.free_spectral_range_m / (2.0 * math.pi)

    # -- spectral response ----------------------------------------------------

    def round_trip_phase(self, wavelength_m: ArrayLike, shift_nm: float = 0.0) -> ArrayLike:
        """Round-trip phase including an applied resonance shift (nm)."""
        # A resonance shift of d_lambda corresponds to an index change
        # dn = n_g * d_lambda / lambda; fold it into the phase.
        wl = np.asarray(wavelength_m, dtype=float)
        shifted_res = self.resonance_wavelength_m + shift_nm * 1e-9
        # Phase measured relative to the (shifted) resonance, exact at
        # resonance and first-order in detuning elsewhere.
        detuning = (wl - shifted_res) / self.free_spectral_range_m
        phase = 2.0 * math.pi * detuning
        return phase if isinstance(wavelength_m, np.ndarray) else float(phase)

    def through_transmission(
        self, wavelength_m: ArrayLike, shift_nm: float = 0.0
    ) -> ArrayLike:
        """Power transmission at the through port."""
        phi = np.asarray(self.round_trip_phase(wavelength_m, shift_nm))
        a = self.single_pass_amplitude
        t1, t2 = self.self_coupling_t1, self.self_coupling_t2
        den = 1.0 - 2.0 * t1 * t2 * a * np.cos(phi) + (t1 * t2 * a) ** 2
        num = (t2 * a) ** 2 - 2.0 * t1 * t2 * a * np.cos(phi) + t1 ** 2
        out = num / den
        return out if isinstance(wavelength_m, np.ndarray) else float(out)

    def drop_transmission(
        self, wavelength_m: ArrayLike, shift_nm: float = 0.0
    ) -> ArrayLike:
        """Power transmission at the drop port."""
        phi = np.asarray(self.round_trip_phase(wavelength_m, shift_nm))
        a = self.single_pass_amplitude
        t1, t2 = self.self_coupling_t1, self.self_coupling_t2
        den = 1.0 - 2.0 * t1 * t2 * a * np.cos(phi) + (t1 * t2 * a) ** 2
        num = (1.0 - t1 ** 2) * (1.0 - t2 ** 2) * a
        out = num / den
        return out if isinstance(wavelength_m, np.ndarray) else float(out)

    def drop_loss_db(self) -> float:
        """Insertion loss of the drop path exactly on resonance."""
        return -linear_to_db(self.drop_transmission(self.resonance_wavelength_m))

    def off_resonance_through_loss_db(self) -> float:
        """Through loss for a signal half an FSR away from resonance."""
        wl = self.resonance_wavelength_m + self.free_spectral_range_m / 2.0
        return -linear_to_db(self.through_transmission(wl))

    def extinction_ratio_db(self) -> float:
        """On/off contrast at the drop port between tuned and detuned states."""
        on = self.drop_transmission(self.resonance_wavelength_m)
        off = self.drop_transmission(
            self.resonance_wavelength_m,
            shift_nm=self.free_spectral_range_m / 2.0 * 1e9,
        )
        return linear_to_db(on / off)
