#!/usr/bin/env python
"""DOTA photonic-accelerator case study (the Fig. 10 experiment).

Feeds DeiT-Tiny and DeiT-Base inference traffic through every candidate
main memory, adds the electro-optic conversion tax electronic memories
pay at the photonic tensor core boundary, and reports system-level EPB.

Usage: python examples/dota_accelerator_study.py
"""

from repro.accel import DEIT_BASE, DEIT_TINY, DotaSystem, dota_case_study


def model_summary() -> None:
    for model in (DEIT_TINY, DEIT_BASE):
        system = DotaSystem("COMET", model)
        print(f"{model.name}: {model.total_params / 1e6:.1f} M params, "
              f"{system.total_bytes_per_inference() / 2**20:.1f} MB moved "
              f"per inference "
              f"(read fraction {system.traffic_workload().read_fraction:.3f})")
    print()


def main() -> None:
    model_summary()
    results = dota_case_study(num_requests=5000)
    for model_name, per_memory in results.items():
        print(f"DOTA + {model_name}:")
        comet_epb = per_memory["COMET"].system_epb_pj
        for memory, res in per_memory.items():
            marker = " <- COMET" if memory == "COMET" else ""
            print(f"  {memory:9s} memory {res.memory_epb_pj:8.1f} "
                  f"+ conversion {res.conversion_pj_per_bit:5.1f} "
                  f"= {res.system_epb_pj:8.1f} pJ/b{marker}")
        print(f"  COMET vs 3D_DDR4: "
              f"{per_memory['3D_DDR4'].system_epb_pj / comet_epb:.2f}x lower "
              f"(paper: 1.3x DeiT-T / 2.06x DeiT-B)")
        print(f"  COMET vs COSMOS:  "
              f"{per_memory['COSMOS'].system_epb_pj / comet_epb:.2f}x lower "
              f"(paper: 2.7x DeiT-T / 1.45x DeiT-B)\n")


if __name__ == "__main__":
    main()
