"""Functional (data-storing) COSMOS crossbar — the corruptible counterpart.

:class:`repro.arch.functional.FunctionalCometMemory` shows COMET storing
data losslessly; this model shows why the paper had to re-architect
COSMOS.  It stores 2-bit levels (the Section IV.B asymmetric set) at
crossbar crossings and applies the thermo-optic crosstalk of
:class:`repro.photonics.crosstalk.CrossbarCrosstalkModel` on *every*
write: programming row ``r`` disturbs the cells of rows ``r±1``.  Reads
use the subtractive flow semantics (the target row's levels are returned,
then the row is left erased unless write-back is enabled).

Together with the COMET functional memory this turns Fig. 2 into an
executable A/B experiment: same data, same write pattern, isolated cells
survive, crossbar cells corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import AddressError, ConfigError
from ..photonics.crosstalk import CrossbarCrosstalkModel
from .cosmos import COSMOS_LEVELS


@dataclass
class CosmosFunctionalStats:
    """Counters of the functional crossbar."""

    writes: int = 0
    reads: int = 0
    cells_read: int = 0
    level_errors: int = 0
    crosstalk_events: int = 0

    @property
    def cell_error_rate(self) -> float:
        return self.level_errors / self.cells_read if self.cells_read else 0.0


class FunctionalCosmosMemory:
    """A behavioural COSMOS subarray with live write crosstalk."""

    def __init__(
        self,
        rows: int = 32,
        cols: int = 32,
        crosstalk: Optional[CrossbarCrosstalkModel] = None,
        write_back_on_read: bool = True,
    ) -> None:
        if rows < 2 or cols < 1:
            raise ConfigError("need at least a 2x1 crossbar")
        self.rows = rows
        self.cols = cols
        self.crosstalk = crosstalk if crosstalk is not None \
            else CrossbarCrosstalkModel()
        self.write_back_on_read = write_back_on_read
        self.levels = np.array(COSMOS_LEVELS)
        # State is per-cell crystalline-fraction-like "level position"
        # normalized to [0, 1]: level i stored as i / (num_levels - 1).
        self._state = np.zeros((rows, cols))
        self._written = np.zeros(rows, dtype=bool)
        self.stats = CosmosFunctionalStats()

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def bits_per_cell(self) -> int:
        return int(np.log2(self.num_levels))

    # ------------------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} outside the {self.rows}-row subarray")

    def _values_to_positions(self, values: np.ndarray) -> np.ndarray:
        if values.shape != (self.cols,):
            raise ConfigError(f"row data must have {self.cols} values")
        if values.min() < 0 or values.max() >= self.num_levels:
            raise ConfigError("values outside the level range")
        return values / (self.num_levels - 1)

    def _positions_to_values(self, positions: np.ndarray) -> np.ndarray:
        return np.clip(
            np.round(positions * (self.num_levels - 1)),
            0, self.num_levels - 1,
        ).astype(int)

    # ------------------------------------------------------------------

    def write_row(self, row: int, values) -> int:
        """Program a full row; adjacent rows take crosstalk hits.

        Returns the number of victim-cell crosstalk events.
        """
        self._check_row(row)
        values = np.asarray(values, dtype=int)
        self._state[row] = self._values_to_positions(values)
        self._written[row] = True
        events = self.crosstalk.disturb_row_write(
            self._state, row, np.arange(self.cols))
        self.stats.writes += 1
        self.stats.crosstalk_events += len(events)
        return len(events)

    def read_row(self, row: int) -> np.ndarray:
        """Subtractive read: return the row's decoded values.

        The flow erases the row; with ``write_back_on_read`` the
        controller restores it (costing another crosstalk-laden write,
        which is COSMOS's bind: even reads disturb neighbours).
        """
        self._check_row(row)
        if not self._written[row]:
            raise AddressError(f"row {row} has never been written")
        decoded = self._positions_to_values(self._state[row])
        self.stats.reads += 1
        self.stats.cells_read += self.cols
        # The erase leg of the subtractive flow.
        self._state[row] = 0.0
        self._written[row] = False
        if self.write_back_on_read:
            self.write_row(row, decoded)
        return decoded

    # ------------------------------------------------------------------

    def corruption_report(
        self, reference: Dict[int, np.ndarray]
    ) -> Tuple[int, float]:
        """Compare current decodes of ``reference`` rows to their data.

        Returns ``(corrupted_cells, corrupted_fraction)`` and updates the
        error counters.
        """
        corrupted = 0
        total = 0
        for row, expected in reference.items():
            self._check_row(row)
            decoded = self._positions_to_values(self._state[row])
            mismatch = int(np.count_nonzero(decoded != np.asarray(expected)))
            corrupted += mismatch
            total += self.cols
        self.stats.level_errors += corrupted
        return corrupted, corrupted / total if total else 0.0
