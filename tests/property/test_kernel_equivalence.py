"""Hypothesis equivalence: ``run_fast`` ↔ ``run`` ↔ ``run_reference``.

Every fast-path scheduler kernel must be indistinguishable from the
scalar tiers on *every* cell the evaluation substrate can name — all
registered architectures (Fig. 9 seven + ablation variants), the full
workload set, arbitrary request counts, seeds and queue-depth
overrides, including the cells that must take a fallback (disabled
kernel classes, ``allow_fast_path=False`` devices, a missing
toolchain, binding per-bank admission stamps).

The agreement contract — complete SimStats equality between the fast
and scalar tiers plus the bit-for-bit oracle comparison — lives in
:mod:`equivalence` and is shared with the micro-trace suites.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import _fastloop
from repro.sim import controller as controller_mod

from equivalence import (architectures, assert_tiers_identical,
                         disabled_classes, make_cell, make_device_cell,
                         queue_depths, request_counts, seeds,
                         shared_bus_devices, workloads, ARCHES_BY_CLASS,
                         SHARED_BUS_ARCHES)

RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def test_registry_covers_every_kernel_class():
    """The registry exercises all three kernels (and the suite below
    therefore does too): per-bank, shared-bus and global-queue devices
    all ship as named architectures."""
    assert set(ARCHES_BY_CLASS) >= {"per_bank", "shared_bus",
                                    "global_queue"}
    assert len(SHARED_BUS_ARCHES) >= 5  # DRAM x4 + EPCM at minimum


class TestKernelEquivalence:
    @given(arch=architectures(), workload=workloads(),
           num_requests=request_counts(), seed=seeds())
    @RELAXED
    def test_three_tiers_agree_across_the_registry(
            self, arch, workload, num_requests, seed):
        assert_tiers_identical(make_cell(arch, workload, num_requests, seed))

    @given(arch=architectures("shared_bus"), workload=workloads(),
           num_requests=st.integers(min_value=200, max_value=2000),
           seed=seeds())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_shared_bus_archs_straddle_refresh_windows(
            self, arch, workload, num_requests, seed):
        """Long traces on the refresh+bus devices: arbitrary workload
        shapes against the bus recurrence, refresh included."""
        assert_tiers_identical(make_cell(arch, workload, num_requests, seed))

    def test_refresh_windows_are_actually_straddled(self):
        """The straddling claim, pinned deterministically: a long mcf
        trace on every DDR architecture crosses refresh windows, so the
        kernel's stall insertion (including the post-bus-wait re-check)
        ran for real — not just traces too short to meet a boundary."""
        for arch in SHARED_BUS_ARCHES:
            if "DDR" not in arch:
                continue
            stats = assert_tiers_identical(make_cell(arch, "mcf", 2000, 1))
            assert stats.refresh_count > 0

    @given(workload=workloads(), num_requests=request_counts(),
           queue_depth=queue_depths())
    @RELAXED
    def test_queue_depth_overrides_agree_on_comet(
            self, workload, num_requests, queue_depth):
        """Small overrides force the admission fallback, large ones the
        kernel — both must match the scalar tiers exactly."""
        assert_tiers_identical(
            make_cell("COMET", workload, num_requests, 1,
                      queue_depth=queue_depth))

    @given(device=shared_bus_devices(),
           queue_depth=st.integers(min_value=1, max_value=64),
           num_requests=st.integers(min_value=1, max_value=300),
           seed=st.integers(min_value=0, max_value=1000))
    @RELAXED
    def test_synthetic_shared_bus_devices(self, device, queue_depth,
                                          num_requests, seed):
        """Bus devices beyond the presets: random turnaround penalties,
        refresh intervals short enough that every trace straddles
        windows, burst/array overlap on a bus, single-bank buses."""
        assert_tiers_identical(
            make_device_cell(device, "mcf", num_requests, seed % 7 + 1,
                             queue_depth=queue_depth))

    @given(banks=st.integers(min_value=1, max_value=9),
           queue_depth=st.integers(min_value=1, max_value=64),
           overlap=st.booleans(),
           num_requests=st.integers(min_value=1, max_value=300),
           seed=st.integers(min_value=0, max_value=1000))
    @RELAXED
    def test_synthetic_per_bank_devices(self, banks, queue_depth, overlap,
                                        num_requests, seed):
        """Per-bank-queue devices beyond the COMET presets: odd bank
        counts, tiny queues (admission fallback), both overlap modes."""
        from repro.sim.devices import EnergyModel, MemoryDeviceModel
        device = MemoryDeviceModel(
            name="synthetic",
            line_bytes=128,
            banks=banks,
            data_burst_ns=3.0,
            interface_delay_ns=7.0,
            read_occupancy_ns=11.0,
            write_occupancy_ns=37.0,
            shared_bus=False,
            burst_overlaps_array=overlap,
            per_bank_queues=True,
            energy=EnergyModel(read_energy_j=1e-9, write_energy_j=2e-9),
        )
        assert_tiers_identical(
            make_device_cell(device, "mcf", num_requests, seed % 7 + 1,
                             queue_depth=queue_depth))


class TestForcedFallbacks:
    @given(arch=architectures(), workload=workloads(),
           num_requests=request_counts(max_value=200), seed=seeds(1000))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_disabled_kernel_classes_stay_identical(
            self, arch, workload, num_requests, seed):
        """With every kernel class disabled, run_fast is forced onto the
        scalar recurrences — and still agrees with all tiers."""
        with disabled_classes(*controller_mod.KERNEL_CLASSES):
            before = controller_mod.kernel_counters()["fallback_device"]
            assert_tiers_identical(
                make_cell(arch, workload, num_requests, seed))
            assert (controller_mod.kernel_counters()["fallback_device"]
                    > before)

    @given(device=shared_bus_devices(),
           num_requests=st.integers(min_value=1, max_value=200),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fast_path_ineligible_devices(self, device, num_requests, seed):
        """``allow_fast_path=False`` pins the scalar recurrence in every
        tier and counts a device fallback."""
        from dataclasses import replace
        pinned = replace(device, allow_fast_path=False)
        assert pinned.fast_path_class is None
        before = controller_mod.kernel_counters()["fallback_device"]
        assert_tiers_identical(
            make_device_cell(pinned, "gcc", num_requests, seed % 5 + 1))
        assert controller_mod.kernel_counters()["fallback_device"] > before

    def test_missing_toolchain_stays_identical(self):
        """REPRO_FASTLOOP=0 disables the compiled twin: shared-bus and
        global-queue cells take the toolchain fallback, bit-identical."""
        os.environ[_fastloop.FASTLOOP_ENV_VAR] = "0"
        try:
            assert not _fastloop.available()
            before = controller_mod.kernel_counters()["fallback_toolchain"]
            for arch in ("2D_DDR3", "EPCM-MM", "COSMOS"):
                assert_tiers_identical(make_cell(arch, "libquantum", 120, 3))
            assert (controller_mod.kernel_counters()["fallback_toolchain"]
                    >= before + 3)
        finally:
            del os.environ[_fastloop.FASTLOOP_ENV_VAR]
        assert _fastloop.available()

    def test_fast_cells_were_exercised(self):
        """Sanity on the suite itself: the dispatch counters show every
        kernel class and every fallback reason ran during this module."""
        # One deterministic cell per kernel class, so the assertion
        # never depends on what hypothesis happened to sample above.
        for arch in ("COMET", "2D_DDR3", "COSMOS"):
            assert_tiers_identical(make_cell(arch, "mcf", 64, 2))
        counters = controller_mod.kernel_counters()
        assert counters["fast_per_bank"] > 0
        assert counters["fast_shared_bus"] > 0
        assert counters["fast_global_queue"] > 0
        assert counters["fallback_device"] > 0
        assert counters["fallback_toolchain"] > 0
