"""Endurance model and Start-Gap wear leveling."""

import pytest

from repro.arch.endurance import EnduranceModel, StartGapWearLeveler
from repro.errors import AddressError, ConfigError


class TestEnduranceModel:
    def test_uniform_writes_give_long_lifetime(self):
        """At the Fig. 9 write loads with uniform wear, one channel device
        lasts ~a decade; the 8-channel part spreads writes 8x further."""
        model = EnduranceModel()
        # One channel device at 3 GB/s of writes, ideal leveling.
        assert model.lifetime_years(3.0) > 5.0
        # The full part's write stream splits across 8 channel devices.
        assert model.lifetime_years(3.0 / 8) > 40.0

    def test_lifetime_inverse_in_bandwidth(self):
        model = EnduranceModel()
        assert model.lifetime_years(1.0) == pytest.approx(
            2.0 * model.lifetime_years(2.0), rel=1e-9)

    def test_leveling_efficiency_scales_lifetime(self):
        model = EnduranceModel()
        full = model.lifetime_years(3.0, leveling_efficiency=1.0)
        half = model.lifetime_years(3.0, leveling_efficiency=0.5)
        assert half == pytest.approx(full / 2.0)

    def test_hot_line_dies_fast_without_leveling(self):
        """A single line rewritten at 1 MHz burns out in under an hour —
        the reason wear leveling is mandatory."""
        model = EnduranceModel()
        years = model.hot_line_lifetime_years(1e6)
        assert years * 365.25 * 24 < 1.0

    def test_validation(self):
        model = EnduranceModel()
        with pytest.raises(ConfigError):
            model.lifetime_years(0.0)
        with pytest.raises(ConfigError):
            model.lifetime_years(1.0, leveling_efficiency=0.0)
        with pytest.raises(ConfigError):
            EnduranceModel(cell_endurance_cycles=0.0)


class TestStartGap:
    def test_mapping_bijective_initially(self):
        leveler = StartGapWearLeveler(rows=16)
        assert leveler.mapping_is_bijective()

    def test_mapping_stays_bijective_through_rotation(self):
        leveler = StartGapWearLeveler(rows=8, gap_move_interval=1)
        for _ in range(100):     # several full laps
            leveler.record_write()
            assert leveler.mapping_is_bijective()

    def test_gap_rotates_the_map(self):
        leveler = StartGapWearLeveler(rows=8, gap_move_interval=1)
        before = [leveler.physical_row(r) for r in range(8)]
        for _ in range(9 * 3):   # three full gap laps
            leveler.record_write()
        after = [leveler.physical_row(r) for r in range(8)]
        assert before != after

    def test_hot_row_visits_many_physical_rows(self):
        """The point of Start-Gap: one hot logical row spreads its writes
        over (nearly) all physical rows."""
        leveler = StartGapWearLeveler(rows=16, gap_move_interval=1)
        visited = set()
        for _ in range(17 * 20):
            visited.add(leveler.physical_row(5))
            leveler.record_write()
        assert len(visited) >= leveler.rows

    def test_write_overhead_matches_interval(self):
        leveler = StartGapWearLeveler(rows=16, gap_move_interval=100)
        for _ in range(10_000):
            leveler.record_write()
        assert leveler.write_overhead() == pytest.approx(0.01, rel=0.05)

    def test_leveling_efficiency_high(self):
        leveler = StartGapWearLeveler(rows=512, gap_move_interval=100)
        for _ in range(5_000):
            leveler.record_write()
        assert leveler.leveling_efficiency() > 0.95

    def test_uniform_traffic_limit_is_one(self):
        """Regression: uniform traffic (hot_fraction -> 0) is already
        perfectly spread, so efficiency must approach 1.0 — the old
        formula capped it at 1 - 1/physical_rows."""
        leveler = StartGapWearLeveler(rows=16, gap_move_interval=100)
        for _ in range(2_000):
            leveler.record_write()
        assert leveler.leveling_efficiency(hot_fraction=0.0) == 1.0
        assert leveler.leveling_efficiency(hot_fraction=1e-9) == \
            pytest.approx(1.0, abs=1e-8)
        # Strictly above the old cap for a small array.
        assert leveler.leveling_efficiency(hot_fraction=1e-9) \
            > 1.0 - 1.0 / leveler.physical_rows

    def test_single_hot_line_limit(self):
        """Regression: a purely hot stream is spread over all physical
        rows at the gap-copy cost: spread * (1 - overhead), unchanged
        from the pre-fix default-path value."""
        leveler = StartGapWearLeveler(rows=64, gap_move_interval=50)
        for _ in range(1_000):
            leveler.record_write()
        spread = 1.0 - 1.0 / leveler.physical_rows
        expected = spread * (1.0 - leveler.write_overhead())
        assert leveler.leveling_efficiency(hot_fraction=1.0) == \
            pytest.approx(expected)

    def test_efficiency_monotone_in_hot_fraction(self):
        leveler = StartGapWearLeveler(rows=32, gap_move_interval=10)
        for _ in range(500):
            leveler.record_write()
        samples = [leveler.leveling_efficiency(hot_fraction=h)
                   for h in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert samples == sorted(samples, reverse=True)
        assert all(0.0 < value <= 1.0 for value in samples)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StartGapWearLeveler(rows=1)
        with pytest.raises(ConfigError):
            StartGapWearLeveler(rows=8, gap_move_interval=0)
        leveler = StartGapWearLeveler(rows=8)
        with pytest.raises(AddressError):
            leveler.physical_row(8)
        with pytest.raises(ConfigError):
            leveler.leveling_efficiency(hot_fraction=-0.1)
        with pytest.raises(ConfigError):
            leveler.leveling_efficiency(hot_fraction=1.1)
