"""Shared strategies and assertions for cross-tier equivalence suites.

One place defines what "the tiers agree" means — **complete SimStats
equality** between ``run_fast`` and ``run`` (bit-for-bit, every field)
plus the oracle comparison against ``run_reference`` (every
schedule-derived field bit-for-bit; energy to 1e-12 relative, because
the oracle re-associates its per-request energy sum) — and the strategy
builders every equivalence suite draws cells from: registered
architectures (optionally filtered by fast-path kernel class),
workloads, request counts, seeds, queue-depth overrides and synthetic
shared-bus device models whose refresh windows real traces straddle.

Forced-fallback cells come from two switches, both exercised here:
:func:`disabled_classes` (process-wide kernel-class disable, restored
on exit) and ``allow_fast_path=False`` device models, which pin the
scalar recurrence in every tier.
"""

from contextlib import contextmanager
from dataclasses import dataclass

import pytest
from hypothesis import strategies as st

from repro.sim import controller as controller_mod
from repro.sim.controller import MemoryController
from repro.sim.devices import (EnergyModel, MemoryDeviceModel, RefreshSpec)
from repro.sim.engine import controller_for
from repro.sim.factory import build_device, known_architectures
from repro.sim.tracegen import (TraceArrays, WORKLOAD_NAMES,
                                cached_trace_arrays)

#: Registered architectures grouped by fast-path kernel class, computed
#: from the device models themselves so the grouping can never drift
#: from the dispatcher's.
ARCHES_BY_CLASS = {}
for _name in known_architectures():
    ARCHES_BY_CLASS.setdefault(
        build_device(_name).fast_path_class, []).append(_name)

#: Every architecture whose cells the shared-bus kernel serves
#: (DRAM x4 with refresh, EPCM, the closed-page DDR4 variant).
SHARED_BUS_ARCHES = tuple(ARCHES_BY_CLASS["shared_bus"])


def architectures(kernel_class="any"):
    """Strategy over registered architecture names.

    ``kernel_class`` filters by :attr:`MemoryDeviceModel.fast_path_class`
    (``"per_bank"`` / ``"shared_bus"`` / ``"global_queue"``); the
    default ``"any"`` samples the whole registry.
    """
    if kernel_class == "any":
        return st.sampled_from(known_architectures())
    return st.sampled_from(tuple(ARCHES_BY_CLASS[kernel_class]))


def workloads():
    """Strategy over every named workload preset."""
    return st.sampled_from(WORKLOAD_NAMES)


def request_counts(min_value=2, max_value=400):
    """Request counts (mixed workloads need one request per program)."""
    return st.integers(min_value=min_value, max_value=max_value)


def seeds(max_value=2 ** 32 - 1):
    """Trace-generator seeds."""
    return st.integers(min_value=0, max_value=max_value)


def queue_depths(min_value=1, max_value=512):
    """Controller queue-depth overrides: small depths force the
    per-bank admission fallback, large ones the kernel."""
    return st.integers(min_value=min_value, max_value=max_value)


@st.composite
def shared_bus_devices(draw):
    """Synthetic fixed-latency shared-bus devices beyond the presets.

    Spans the coupling regimes the compiled exact twin must reproduce:
    with and without refresh (intervals short enough that SPEC-shaped
    traces straddle many windows), read/write turnaround penalties,
    burst/array overlap and single-bank buses.
    """
    banks = draw(st.integers(min_value=1, max_value=9))
    read_ns = draw(st.floats(min_value=1.0, max_value=80.0))
    write_ns = draw(st.floats(min_value=1.0, max_value=500.0))
    refresh = None
    if draw(st.booleans()):
        interval = draw(st.floats(min_value=200.0, max_value=4000.0))
        duration = draw(st.floats(min_value=1.0, max_value=0.4 * interval))
        refresh = RefreshSpec(interval_ns=interval, duration_ns=duration)
    return MemoryDeviceModel(
        name="synthetic-bus",
        line_bytes=64,
        banks=banks,
        data_burst_ns=draw(st.floats(min_value=1.0, max_value=12.0)),
        interface_delay_ns=5.0,
        read_occupancy_ns=read_ns,
        write_occupancy_ns=write_ns,
        refresh=refresh,
        shared_bus=True,
        bus_turnaround_ns=draw(st.floats(min_value=0.0, max_value=9.0)),
        burst_overlaps_array=draw(st.booleans()),
        energy=EnergyModel(read_energy_j=1e-9, write_energy_j=2e-9),
    )


@dataclass(frozen=True)
class Cell:
    """One grid cell: a controller bound to a trace."""

    controller: MemoryController
    trace: TraceArrays
    workload: str


def make_cell(arch, workload, num_requests, seed, queue_depth=None):
    """Build a :class:`Cell` for a registered architecture name."""
    controller = (controller_for(arch) if queue_depth is None
                  else controller_for(arch, queue_depth=queue_depth))
    return Cell(controller, cached_trace_arrays(workload, num_requests, seed),
                workload)


def make_device_cell(device, workload, num_requests, seed, queue_depth=32):
    """Build a :class:`Cell` for a synthetic device model."""
    return Cell(MemoryController(device, queue_depth=queue_depth),
                cached_trace_arrays(workload, num_requests, seed), workload)


@contextmanager
def disabled_classes(*classes):
    """Disable fast-path kernel classes for the enclosed block."""
    previous = controller_mod.set_disabled_fast_classes(classes)
    try:
        yield
    finally:
        controller_mod.set_disabled_fast_classes(previous)


def assert_tiers_identical(cell):
    """All three tiers agree on one cell; returns the fast-tier stats.

    ``run_fast`` vs ``run`` is complete SimStats equality; the
    ``run_reference`` oracle comparison pins every schedule-derived
    field bit-for-bit and the energy to 1e-12 relative (the oracle
    re-associates its per-request energy sum).
    """
    controller, trace, workload = cell.controller, cell.trace, cell.workload
    fast = controller.run_arrays(trace, workload_name=workload, fast=True)
    scalar = controller.run_arrays(trace, workload_name=workload, fast=False)
    assert fast.to_dict() == scalar.to_dict()
    reference = controller.run_reference(trace.to_requests(), workload)
    assert fast.latencies_ns == reference.latencies_ns
    assert fast.sim_time_ns == reference.sim_time_ns
    assert fast.busy_time_ns == reference.busy_time_ns
    assert fast.active_time_ns == reference.active_time_ns
    assert fast.refresh_count == reference.refresh_count
    assert fast.row_hits == reference.row_hits
    assert fast.row_misses == reference.row_misses
    assert fast.op_energy_j == pytest.approx(reference.op_energy_j,
                                             rel=1e-12)
    return fast
