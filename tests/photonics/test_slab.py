"""Multilayer slab mode solver: physics sanity and known solutions."""

import math

import pytest

from repro.errors import SolverError
from repro.photonics.indices import SILICA_INDEX, SILICON_INDEX
from repro.photonics.slab import Layer, MultilayerSlabSolver


def soi_solver(thickness=220e-9, wavelength=1550e-9):
    return MultilayerSlabSolver(
        [Layer("core", complex(SILICON_INDEX), thickness)],
        bottom_cladding_index=complex(SILICA_INDEX),
        top_cladding_index=complex(SILICA_INDEX),
        wavelength_m=wavelength,
    )


class TestSoiSlab:
    def test_fundamental_in_bracket(self):
        mode = soi_solver().fundamental()
        assert SILICA_INDEX < mode.effective_index < SILICON_INDEX

    def test_220nm_soi_effective_index(self):
        """220 nm SOI TE0 effective index is ~2.8 at 1550 nm."""
        mode = soi_solver().fundamental()
        assert mode.effective_index == pytest.approx(2.8, abs=0.15)

    def test_single_te_mode_at_220nm(self):
        modes = soi_solver().solve(max_modes=4)
        assert len(modes) == 1

    def test_thicker_slab_multimode(self):
        modes = soi_solver(thickness=500e-9).solve(max_modes=4)
        assert len(modes) >= 2
        assert modes[0].effective_index > modes[1].effective_index

    def test_confinement_sums_to_one(self):
        mode = soi_solver().fundamental()
        assert sum(mode.confinement.values()) == pytest.approx(1.0, abs=1e-9)

    def test_core_confinement_dominates(self):
        mode = soi_solver().fundamental()
        assert mode.confinement["core"] > 0.6

    def test_thicker_core_confines_more(self):
        thin = soi_solver(thickness=150e-9).fundamental()
        thick = soi_solver(thickness=300e-9).fundamental()
        assert thick.confinement["core"] > thin.confinement["core"]

    def test_lossless_stack_has_zero_extinction(self):
        mode = soi_solver().fundamental()
        assert mode.modal_extinction == 0.0


class TestAnalyticCrosscheck:
    def test_symmetric_slab_dispersion_relation(self):
        """The solver's root satisfies the textbook TE dispersion relation:

        tan(k d / 2) = gamma / k   (even TE modes of a symmetric slab).
        """
        thickness = 220e-9
        wavelength = 1550e-9
        mode = soi_solver(thickness, wavelength).fundamental()
        k0 = 2 * math.pi / wavelength
        n_eff = mode.effective_index
        k = k0 * math.sqrt(SILICON_INDEX ** 2 - n_eff ** 2)
        gamma = k0 * math.sqrt(n_eff ** 2 - SILICA_INDEX ** 2)
        assert math.tan(k * thickness / 2) == pytest.approx(gamma / k, rel=1e-4)


class TestAbsorbingLayer:
    def test_absorbing_film_adds_modal_extinction(self):
        solver = MultilayerSlabSolver(
            [Layer("core", complex(SILICON_INDEX), 220e-9),
             Layer("pcm", complex(6.11, 0.83), 20e-9)],
            bottom_cladding_index=complex(SILICA_INDEX),
            top_cladding_index=complex(SILICA_INDEX),
            wavelength_m=1550e-9,
        )
        mode = solver.fundamental()
        assert mode.modal_extinction > 0.0
        assert mode.confinement["pcm"] > 0.01

    def test_extinction_scales_with_film_kappa(self):
        def extinction(kappa):
            solver = MultilayerSlabSolver(
                [Layer("core", complex(SILICON_INDEX), 220e-9),
                 Layer("pcm", complex(4.5, kappa), 20e-9)],
                bottom_cladding_index=complex(SILICA_INDEX),
                top_cladding_index=complex(SILICA_INDEX),
                wavelength_m=1550e-9,
            )
            return solver.fundamental().modal_extinction

        assert extinction(0.8) > extinction(0.4) > extinction(0.1) > 0.0


class TestValidation:
    def test_no_guiding_without_index_step(self):
        with pytest.raises(SolverError):
            MultilayerSlabSolver(
                [Layer("core", complex(1.4), 220e-9)],
                bottom_cladding_index=complex(SILICA_INDEX),
                top_cladding_index=complex(SILICA_INDEX),
                wavelength_m=1550e-9,
            )

    def test_empty_stack_rejected(self):
        with pytest.raises(SolverError):
            MultilayerSlabSolver([], complex(1.444), complex(1.444), 1550e-9)

    def test_bad_layer_rejected(self):
        with pytest.raises(SolverError):
            Layer("bad", complex(3.4), -1e-9)
