"""Table rendering helpers."""

from repro.exp.report import format_table, ratio_line, to_csv


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [100, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # columns align: separator row matches header width
        assert len(lines[1]) >= len(lines[0].rstrip())

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000001], [12345.6]])
        assert "e-06" in text or "1e-06" in text
        assert "e+04" in text or "12345" not in text  # large -> scientific


class TestCsv:
    def test_roundtrip_shape(self):
        csv_text = to_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert len(lines) == 3


class TestRatioLine:
    def test_contains_both_values(self):
        line = ratio_line("BW", 5.2, 5.1)
        assert "5.20x" in line and "5.10x" in line
