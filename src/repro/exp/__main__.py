"""Command-line entry point: ``python -m repro.exp [experiment ...]``.

With no arguments, runs every registered experiment in paper order.
"""

from __future__ import annotations

import sys

from .registry import EXPERIMENTS, get_experiment


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    ids = args if args else list(EXPERIMENTS)
    for exp_id in ids:
        experiment = get_experiment(exp_id)
        print(f"=== {experiment.exp_id}: {experiment.description} ===")
        experiment.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
