"""Strip waveguide EIM model and the PCM-loaded variant."""

import pytest

from repro.errors import SolverError
from repro.photonics.indices import SILICA_INDEX
from repro.photonics.waveguide import PcmLoadedWaveguide, StripWaveguide


class TestBareStrip:
    def test_paper_geometry_guides(self):
        mode = StripWaveguide().solve(1550e-9)
        assert SILICA_INDEX < mode.effective_index < 3.0
        assert mode.vertical_confinement_pcm == 0.0

    def test_wider_strip_higher_index(self):
        narrow = StripWaveguide(width_m=400e-9).solve(1550e-9)
        wide = StripWaveguide(width_m=600e-9).solve(1550e-9)
        assert wide.effective_index > narrow.effective_index

    def test_lateral_confinement_high(self):
        mode = StripWaveguide().solve(1550e-9)
        assert mode.lateral_confinement > 0.85

    def test_validation(self):
        with pytest.raises(SolverError):
            StripWaveguide(width_m=0.0)
        with pytest.raises(SolverError):
            StripWaveguide(pcm_index=complex(4.0, 0.1), pcm_thickness_m=0.0)


class TestPcmLoaded:
    def test_loading_raises_effective_index(self):
        pair = PcmLoadedWaveguide()
        bare = pair.bare_mode(1550e-9)
        loaded = pair.loaded_mode(1550e-9, complex(3.94, 0.045))
        assert loaded.effective_index > bare.effective_index

    def test_crystalline_loads_more_than_amorphous(self):
        pair = PcmLoadedWaveguide()
        amorphous = pair.loaded_mode(1550e-9, complex(3.94, 0.045))
        crystalline = pair.loaded_mode(1550e-9, complex(6.11, 0.83))
        assert crystalline.effective_index > amorphous.effective_index
        assert crystalline.modal_extinction > amorphous.modal_extinction

    def test_pcm_confinement_grows_with_thickness(self):
        thin = PcmLoadedWaveguide(pcm_thickness_m=10e-9)
        thick = PcmLoadedWaveguide(pcm_thickness_m=40e-9)
        index = complex(6.11, 0.83)
        assert (thick.loaded_mode(1550e-9, index).pcm_confinement
                > thin.loaded_mode(1550e-9, index).pcm_confinement)

    def test_width_effect_weak(self):
        """Fig. 4's observation: width barely moves the absorption."""
        index = complex(6.11, 0.83)
        narrow = PcmLoadedWaveguide(width_m=400e-9).loaded_mode(1550e-9, index)
        wide = PcmLoadedWaveguide(width_m=600e-9).loaded_mode(1550e-9, index)
        rel_change = abs(narrow.modal_extinction - wide.modal_extinction) \
            / wide.modal_extinction
        assert rel_change < 0.35

    def test_cache_hit_returns_identical_object(self):
        pair = PcmLoadedWaveguide()
        first = pair.loaded_mode(1550e-9, complex(3.94, 0.045))
        second = pair.loaded_mode(1550e-9, complex(3.94, 0.045))
        assert first is second
