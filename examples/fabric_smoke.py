"""Fabric smoke test: two real daemons, one killed mid-sweep.

The CI job runs this end to end against real processes (no pytest, no
in-process shortcuts): launch two ``python -m repro.sim serve``
subprocesses with separate result stores, drive a partitioned grid
through the fabric coordinator, SIGKILL one daemon as soon as it has
computed a cell, and assert that

* the coordinator re-dispatches the dead daemon's unfinished cells to
  the survivor and completes the sweep,
* the results are bit-identical to a serial ``run_sweep`` of the same
  spec,
* ``python -m repro.sim merge-stores`` folds the daemons' stores (plus
  the coordinator's local write-through store) together without
  conflicts, and
* a warm sweep against the merged store recomputes nothing.

Usage::

    PYTHONPATH=src python examples/fabric_smoke.py
"""

import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.errors import SimulationError
from repro.sim.client import EvalClient
from repro.sim.fabric import run_fabric
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepSpec, run_sweep

SPEC = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                 workloads=("gcc", "lbm", "mcf", "milc"),
                 num_requests=(4000,), seeds=(7,), queue_depths=(None,))


def launch_daemon(store_dir):
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.sim", "serve", "--port", "0",
         "--store", store_dir, "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ},
    )
    ready = daemon.stdout.readline().strip()
    assert ready.startswith("ready: "), f"unexpected banner: {ready!r}"
    return daemon, ready.split("ready: ", 1)[1]


def kill_after_first_compute(daemon, address):
    """SIGKILL the daemon the moment its /stats shows a computed cell —
    mid-sweep by construction, so its partition is left unfinished."""
    client = EvalClient(address, timeout=5.0, retries=0)
    while daemon.poll() is None:
        try:
            if client.stats().get("computed", 0) >= 1:
                daemon.kill()
                return
        except SimulationError:
            return
        time.sleep(0.02)


def drain(daemon, label):
    if daemon.poll() is None:
        daemon.kill()
        daemon.wait(timeout=30)
    stderr = daemon.stderr.read()
    if stderr:
        print(f"--- {label} stderr ---\n{stderr}", file=sys.stderr)


def main() -> int:
    root = tempfile.mkdtemp(prefix="fabric-smoke-")
    store_a = os.path.join(root, "daemon-a")
    store_b = os.path.join(root, "daemon-b")
    local = os.path.join(root, "local")
    merged = os.path.join(root, "merged")
    daemon_a, addr_a = launch_daemon(store_a)
    daemon_b, addr_b = launch_daemon(store_b)
    print(f"fleet up: {addr_a} + {addr_b}")
    try:
        killer = threading.Thread(
            target=kill_after_first_compute, args=(daemon_b, addr_b),
            daemon=True)
        killer.start()
        result = run_fabric(SPEC, [addr_a, addr_b],
                            store=ResultStore(local),
                            window=1, retries=0, backoff=0.05,
                            cell_attempts=4)
        killer.join(timeout=10)
        print(f"fabric: {result.describe()}")
        assert daemon_b.poll() is not None, "victim daemon still alive"
        assert result.dead_hosts == [addr_b], result.dead_hosts
        assert result.redispatched >= 1, \
            "kill landed without any re-dispatch"
        assert len(result.results) == SPEC.num_cells

        serial = run_sweep(SPEC)
        assert result.results == serial.results, \
            "fabric results diverge from serial run_sweep"
        print("fabric results bit-identical to serial run_sweep")

        merge = subprocess.run(
            [sys.executable, "-m", "repro.sim", "merge-stores",
             "--into", merged, store_a, store_b, local],
            capture_output=True, text=True, env={**os.environ})
        print(merge.stdout, end="")
        assert merge.returncode == 0, \
            f"merge-stores exited {merge.returncode}: {merge.stderr}"
        print("stores merged without conflicts")

        warm = run_sweep(SPEC, store=ResultStore(merged), resume=True)
        assert warm.computed == 0, \
            f"warm sweep against merged store recomputed {warm.computed}"
        assert warm.results == serial.results
        print("merged store warm no-compute: results bit-identical")

        EvalClient(addr_a).shutdown()
        code = daemon_a.wait(timeout=60)
        assert code == 0, f"survivor exited {code}"
        print("clean shutdown")
        return 0
    finally:
        drain(daemon_a, "daemon-a")
        drain(daemon_b, "daemon-b")


if __name__ == "__main__":
    sys.exit(main())
