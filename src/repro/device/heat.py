"""Transient thermal models of the OPCM cell stack (HEAT substitute).

Two models, cross-validated against each other:

* :class:`LayeredHeatSolver` — a 1-D Crank–Nicolson finite-difference solver
  through the BOX / Si-core / GST / cladding stack with a volumetric heat
  source in the GST film (the absorbed share of the optical mode) and an
  effective lateral-spreading loss term.  This is the substitute for the
  paper's Ansys Lumerical HEAT transient simulation.
* :class:`LumpedThermalModel` — a single-pole RC model with analytic step
  and decay responses, calibrated so that the paper's two reset case
  studies come out at their published energies (880 pJ crystalline-
  deposited, 280 pJ amorphous-deposited; Section III.B).  The architecture
  and Fig. 6 paths use this model; the layered solver validates it.

The lumped model's thermal resistance is referenced to *incident* optical
power at the cell (it folds in the state-averaged absorption efficiency),
because that is the quantity the paper's pulse-energy numbers are quoted
against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.linalg import solve_banded

from ..constants import AMBIENT_TEMPERATURE_K
from ..errors import SolverError


# ---------------------------------------------------------------------------
# Material thermal library (bulk literature values)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThermalLayer:
    """One layer of the 1-D thermal stack."""

    name: str
    thickness_m: float
    conductivity_w_mk: float
    volumetric_heat_j_m3k: float

    def __post_init__(self) -> None:
        if self.thickness_m <= 0.0:
            raise SolverError(f"layer {self.name!r} needs positive thickness")
        if self.conductivity_w_mk <= 0.0 or self.volumetric_heat_j_m3k <= 0.0:
            raise SolverError(f"layer {self.name!r} needs positive properties")


#: name -> (conductivity [W/mK], volumetric heat capacity [J/m^3 K])
THERMAL_LIBRARY: Dict[str, Tuple[float, float]] = {
    "SiO2": (1.38, 1.63e6),
    "Si": (130.0, 1.64e6),       # thin-film silicon, slightly below bulk
    "GST": (0.57, 1.34e6),       # crystalline GST; amorphous uses 0.19
    "GST_amorphous": (0.19, 1.34e6),
}


def default_cell_stack(gst_thickness_m: float = 20e-9) -> List[ThermalLayer]:
    """The BOX / Si / GST / cladding stack of the Fig. 5(a) cell."""
    return [
        ThermalLayer("box", 2e-6, *THERMAL_LIBRARY["SiO2"]),
        ThermalLayer("core", 220e-9, *THERMAL_LIBRARY["Si"]),
        ThermalLayer("gst", gst_thickness_m, *THERMAL_LIBRARY["GST"]),
        ThermalLayer("cladding", 1e-6, *THERMAL_LIBRARY["SiO2"]),
    ]


# ---------------------------------------------------------------------------
# Layered 1-D Crank–Nicolson solver
# ---------------------------------------------------------------------------


class LayeredHeatSolver:
    """1-D transient heat conduction through the cell's layer stack.

    The equation solved per node is::

        rho*c * dT/dt = d/dz (k dT/dz) + q(z, t) - g_lat * (T - T_amb)

    with Dirichlet ambient boundaries at the bottom of the BOX (substrate
    heat sink) and the top of the cladding.  ``g_lat`` is an effective
    volumetric lateral-spreading conductance accounting for the in-plane
    heat flow a 1-D model otherwise ignores.
    """

    def __init__(
        self,
        layers: Optional[List[ThermalLayer]] = None,
        dz_m: float = 10e-9,
        heated_layer: str = "gst",
        heated_area_m2: float = 480e-9 * 2e-6,
        lateral_conductance_w_m3k: float = 1.0e13,
        ambient_k: float = AMBIENT_TEMPERATURE_K,
    ) -> None:
        if dz_m <= 0.0:
            raise SolverError("grid spacing must be positive")
        self.layers = layers if layers is not None else default_cell_stack()
        self.dz = dz_m
        self.heated_layer = heated_layer
        self.heated_area = heated_area_m2
        self.g_lat = lateral_conductance_w_m3k
        self.ambient = ambient_k
        self._build_grid()

    def _build_grid(self) -> None:
        conductivity: List[float] = []
        heat_capacity: List[float] = []
        source_mask: List[bool] = []
        layer_names: List[str] = []
        for layer in self.layers:
            nodes = max(2, int(round(layer.thickness_m / self.dz)))
            conductivity.extend([layer.conductivity_w_mk] * nodes)
            heat_capacity.extend([layer.volumetric_heat_j_m3k] * nodes)
            source_mask.extend([layer.name == self.heated_layer] * nodes)
            layer_names.extend([layer.name] * nodes)
        if not any(source_mask):
            raise SolverError(
                f"heated layer {self.heated_layer!r} not present in the stack"
            )
        self.k = np.asarray(conductivity)
        self.rho_c = np.asarray(heat_capacity)
        self.source_mask = np.asarray(source_mask)
        self.layer_names = layer_names
        self.n_nodes = len(layer_names)

    # -- core stepping ----------------------------------------------------

    def _assemble(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Crank–Nicolson banded matrices (A x_{t+1} = B x_t + s)."""
        n = self.n_nodes
        dz2 = self.dz ** 2
        # Harmonic-mean interface conductivities.
        k_half = np.zeros(n + 1)
        k_half[1:n] = 2.0 * self.k[:-1] * self.k[1:] / (self.k[:-1] + self.k[1:])
        k_half[0] = self.k[0]
        k_half[n] = self.k[-1]
        lower = -0.5 * dt * k_half[:n] / (self.rho_c * dz2)
        upper = -0.5 * dt * k_half[1:] / (self.rho_c * dz2)
        decay = 0.5 * dt * self.g_lat / self.rho_c
        diag_a = 1.0 - (lower + upper) + decay
        a_banded = np.zeros((3, n))
        a_banded[0, 1:] = upper[:-1]
        a_banded[1, :] = diag_a
        a_banded[2, :-1] = lower[1:]
        return a_banded, np.stack([lower, upper, decay])

    def simulate(
        self,
        absorbed_power_w: float,
        pulse_duration_s: float,
        total_time_s: float,
        dt_s: float = 0.25e-9,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run a rectangular pulse; return (times, GST-film mean temperature).

        ``absorbed_power_w`` is the optical power actually dissipated in the
        GST film; it is spread uniformly over the film volume.
        """
        if absorbed_power_w < 0.0:
            raise SolverError("absorbed power must be non-negative")
        if pulse_duration_s < 0.0 or total_time_s <= 0.0 or dt_s <= 0.0:
            raise SolverError("times must be positive")
        n_steps = int(math.ceil(total_time_s / dt_s))
        a_banded, parts = self._assemble(dt_s)
        lower, upper, decay = parts
        gst_nodes = int(np.count_nonzero(self.source_mask))
        film_volume = self.heated_area * gst_nodes * self.dz
        q_density = absorbed_power_w / film_volume  # W/m^3

        temp = np.full(self.n_nodes, self.ambient)
        times = np.zeros(n_steps + 1)
        gst_temp = np.zeros(n_steps + 1)
        gst_temp[0] = self.ambient

        for step in range(1, n_steps + 1):
            t_now = step * dt_s
            theta = temp - self.ambient
            # Explicit half of CN.
            rhs = theta.copy()
            rhs[1:] -= lower[1:] * theta[:-1]
            rhs[:-1] -= upper[:-1] * theta[1:]
            rhs -= (-(lower + upper) + decay) * theta
            on_now = (t_now - dt_s) < pulse_duration_s
            on_next = t_now <= pulse_duration_s
            q_avg = q_density * (0.5 * (1.0 if on_now else 0.0)
                                 + 0.5 * (1.0 if on_next else 0.0))
            rhs += dt_s * q_avg * self.source_mask / self.rho_c
            theta_next = solve_banded((1, 1), a_banded, rhs)
            temp = theta_next + self.ambient
            times[step] = t_now
            gst_temp[step] = float(np.mean(temp[self.source_mask]))
        return times, gst_temp

    def step_response(
        self, absorbed_power_w: float, duration_s: float = 200e-9,
        dt_s: float = 0.25e-9,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Heating step response of the GST film (no cool-down phase)."""
        return self.simulate(absorbed_power_w, duration_s, duration_s, dt_s)


# ---------------------------------------------------------------------------
# Lumped single-pole RC model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LumpedThermalModel:
    """Single-pole thermal model with analytic responses.

    ``thermal_resistance_k_per_w`` maps *incident* optical power at the cell
    to steady-state temperature rise; ``time_constant_s`` is the RC time.
    Defaults are calibrated to the paper's reset-energy case studies — see
    module docstring.
    """

    thermal_resistance_k_per_w: float = 1.518e5
    time_constant_s: float = 26e-9
    ambient_k: float = AMBIENT_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.thermal_resistance_k_per_w <= 0.0 or self.time_constant_s <= 0.0:
            raise SolverError("thermal resistance and time constant must be positive")

    @property
    def heat_capacity_j_per_k(self) -> float:
        return self.time_constant_s / self.thermal_resistance_k_per_w

    # -- heating ----------------------------------------------------------

    def steady_state_k(self, power_w: float) -> float:
        """Asymptotic temperature for a continuous incident power."""
        return self.ambient_k + power_w * self.thermal_resistance_k_per_w

    def temperature_k(self, power_w: float, time_s: float) -> float:
        """Temperature after heating for ``time_s`` from ambient."""
        if time_s < 0.0:
            raise SolverError("time must be non-negative")
        rise = power_w * self.thermal_resistance_k_per_w
        return self.ambient_k + rise * (1.0 - math.exp(-time_s / self.time_constant_s))

    def time_to_temperature_s(self, power_w: float, target_k: float) -> float:
        """Heating time from ambient to ``target_k``; raises if unreachable."""
        rise_needed = target_k - self.ambient_k
        if rise_needed <= 0.0:
            return 0.0
        rise_max = power_w * self.thermal_resistance_k_per_w
        if rise_needed >= rise_max:
            raise SolverError(
                f"target {target_k:.0f} K unreachable: steady state is "
                f"{self.ambient_k + rise_max:.0f} K at {power_w * 1e3:.2f} mW"
            )
        return -self.time_constant_s * math.log(1.0 - rise_needed / rise_max)

    def power_for_temperature_w(self, target_k: float) -> float:
        """Continuous power whose steady state is exactly ``target_k``."""
        rise = target_k - self.ambient_k
        if rise < 0.0:
            raise SolverError("target below ambient")
        return rise / self.thermal_resistance_k_per_w

    # -- cooling -----------------------------------------------------------

    def cooling_temperature_k(self, start_k: float, time_s: float) -> float:
        """Free-cooling temperature from ``start_k`` after ``time_s``."""
        if time_s < 0.0:
            raise SolverError("time must be non-negative")
        return self.ambient_k + (start_k - self.ambient_k) * math.exp(
            -time_s / self.time_constant_s
        )

    def time_to_cool_s(self, start_k: float, target_k: float) -> float:
        """Free-cooling time from ``start_k`` down to ``target_k``."""
        if target_k <= self.ambient_k:
            raise SolverError("cannot cool to or below ambient")
        if target_k >= start_k:
            return 0.0
        return self.time_constant_s * math.log(
            (start_k - self.ambient_k) / (target_k - self.ambient_k)
        )

    def quench_rate_k_per_s(self, temperature_k: float) -> float:
        """Instantaneous cooling rate while free-cooling through ``T``."""
        return (temperature_k - self.ambient_k) / self.time_constant_s


def calibrate_lumped_from_layered(
    solver: LayeredHeatSolver,
    probe_power_w: float = 1e-3,
    duration_s: float = 300e-9,
) -> LumpedThermalModel:
    """Fit a lumped model to the layered solver's step response.

    The thermal resistance comes from the final temperature of a long step;
    the time constant from the 63.2 % rise time.  Used by tests to confirm
    the two thermal models agree on time scales (within their structural
    differences), and available for users who change the stack.
    """
    times, temps = solver.step_response(probe_power_w, duration_s)
    rise = temps[-1] - solver.ambient
    if rise <= 0.0:
        raise SolverError("step response produced no temperature rise")
    resistance = rise / probe_power_w
    target = solver.ambient + rise * (1.0 - math.exp(-1.0))
    idx = int(np.searchsorted(temps, target))
    idx = min(max(idx, 1), len(times) - 1)
    tau = float(times[idx])
    return LumpedThermalModel(
        thermal_resistance_k_per_w=float(resistance),
        time_constant_s=tau,
        ambient_k=solver.ambient,
    )
