"""Material database: GST, GSST and Sb2Se3 optical + thermal parameters.

Optical anchor points (n, kappa at 1550 nm) come from the literature the
paper builds on:

* **GST (Ge2Sb2Te5)** — amorphous n = 3.94, k = 0.045; crystalline n = 6.11,
  k = 0.83 (Rios et al. [21]; Li et al. [17]).  Highest index contrast and
  a strong crystalline extinction — the property pair that makes the paper
  select GST (Fig. 3).
* **GSST (Ge2Sb2Se4Te)** — amorphous n = 3.33, k = 0.002; crystalline
  n = 5.08, k = 0.35 (Zhang et al., "broadband transparent optical phase
  change materials").  Lower loss, lower contrast.
* **Sb2Se3** — amorphous n = 3.285, k ~ 0; crystalline n = 4.05, k ~ 1e-4
  (Delaney et al.).  Ultra-low loss but the smallest contrast of the three.

Thermal/kinetic parameters are representative GST values used by the heat
and crystallization models (Section III.B of the paper uses Lumerical HEAT;
our substitute consumes these numbers — see DESIGN.md):

* melting temperature  Tl ~ 900 K, crystallization onset Tg ~ 430 K;
* density 6150 kg/m^3, specific heat 218 J/(kg K);
* thermal conductivity: amorphous 0.19, crystalline 0.57 W/(m K).

Kinetics calibration targets the paper's two device-level case studies:
a 880 pJ crystalline-deposited reset and a 280 pJ amorphous-deposited
reset (Section III.B), and the Table II max-write/erase envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..constants import WAVELENGTH_1550_M
from ..errors import MaterialError
from .lorentz import LorentzOscillator, fit_single_oscillator

MATERIAL_NAMES = ("GST", "GSST", "Sb2Se3")


@dataclass(frozen=True)
class ThermalProperties:
    """Bulk thermal constants of a PCM (plus its phase-transition points)."""

    melting_temperature_k: float           # Tl
    crystallization_temperature_k: float   # Tg (onset of crystallization)
    density_kg_m3: float
    specific_heat_j_kg_k: float
    conductivity_amorphous_w_mk: float
    conductivity_crystalline_w_mk: float
    latent_heat_fusion_j_kg: float

    def __post_init__(self) -> None:
        if self.melting_temperature_k <= self.crystallization_temperature_k:
            raise MaterialError("Tl must exceed Tg")

    def conductivity(self, crystalline_fraction: float) -> float:
        """Linear mix of the phase conductivities."""
        fc = min(max(crystalline_fraction, 0.0), 1.0)
        return (fc * self.conductivity_crystalline_w_mk
                + (1.0 - fc) * self.conductivity_amorphous_w_mk)

    def volumetric_heat_capacity(self) -> float:
        """rho * c_p in J/(m^3 K)."""
        return self.density_kg_m3 * self.specific_heat_j_kg_k


@dataclass(frozen=True)
class KineticsParameters:
    """Crystallization-rate model parameters (see repro.device.kinetics).

    The crystallization rate uses a temperature-windowed peak model,
    ``k(T) = k_max * exp(-((T - T_opt)/sigma)^2)`` for Tg < T < Tl, which
    captures the nucleation/growth trade-off (Arrhenius activation versus
    vanishing thermodynamic driving force near the melt).  ``avrami_n`` is
    the JMAK exponent.
    """

    k_max_per_s: float
    optimal_temperature_k: float
    window_sigma_k: float
    avrami_exponent: float
    critical_quench_rate_k_per_s: float

    def __post_init__(self) -> None:
        if self.k_max_per_s <= 0.0 or self.window_sigma_k <= 0.0:
            raise MaterialError("kinetics rates must be positive")
        if self.avrami_exponent <= 0.0:
            raise MaterialError("Avrami exponent must be positive")


@dataclass(frozen=True)
class MaterialRecord:
    """Everything the library knows about one PCM candidate."""

    name: str
    nk_amorphous_1550: Tuple[float, float]
    nk_crystalline_1550: Tuple[float, float]
    resonance_amorphous_ev: float
    resonance_crystalline_ev: float
    damping_amorphous_ev: float
    damping_crystalline_ev: float
    thermal: ThermalProperties
    kinetics: KineticsParameters

    def build_oscillators(self) -> Tuple[LorentzOscillator, LorentzOscillator]:
        """Fit (amorphous, crystalline) oscillators to the 1550 nm anchors."""
        n_a, k_a = self.nk_amorphous_1550
        n_c, k_c = self.nk_crystalline_1550
        osc_a = fit_single_oscillator(
            n_a, k_a, WAVELENGTH_1550_M,
            self.resonance_amorphous_ev, self.damping_amorphous_ev,
        )
        osc_c = fit_single_oscillator(
            n_c, k_c, WAVELENGTH_1550_M,
            self.resonance_crystalline_ev, self.damping_crystalline_ev,
        )
        return osc_a, osc_c


_GST_THERMAL = ThermalProperties(
    melting_temperature_k=900.0,
    crystallization_temperature_k=430.0,
    density_kg_m3=6150.0,
    specific_heat_j_kg_k=218.0,
    conductivity_amorphous_w_mk=0.19,
    conductivity_crystalline_w_mk=0.57,
    latent_heat_fusion_j_kg=4.2e5,
)

# Calibrated so that (a) full crystallization at the 1 mW programming
# temperature takes ~850 ns (the paper's 880 pJ crystalline-deposited reset)
# and (b) partial-SET pulses at 5 mW stay within the 170 ns Table II write
# envelope.  See repro/device/kinetics.py and tests/device/test_kinetics.py.
_GST_KINETICS = KineticsParameters(
    k_max_per_s=6.0e7,
    optimal_temperature_k=650.0,
    window_sigma_k=115.0,
    avrami_exponent=2.0,
    critical_quench_rate_k_per_s=1.0e9,
)

# GSST crystallizes markedly slower than GST (the Se substitution);
# Sb2Se3 slower still, with a lower melting point.
_GSST_THERMAL = ThermalProperties(
    melting_temperature_k=900.0,
    crystallization_temperature_k=460.0,
    density_kg_m3=5900.0,
    specific_heat_j_kg_k=220.0,
    conductivity_amorphous_w_mk=0.17,
    conductivity_crystalline_w_mk=0.45,
    latent_heat_fusion_j_kg=4.0e5,
)
_GSST_KINETICS = KineticsParameters(
    k_max_per_s=1.0e7,
    optimal_temperature_k=680.0,
    window_sigma_k=110.0,
    avrami_exponent=2.0,
    critical_quench_rate_k_per_s=8.0e8,
)

_SB2SE3_THERMAL = ThermalProperties(
    melting_temperature_k=885.0,
    crystallization_temperature_k=473.0,
    density_kg_m3=5840.0,
    specific_heat_j_kg_k=230.0,
    conductivity_amorphous_w_mk=0.24,
    conductivity_crystalline_w_mk=0.65,
    latent_heat_fusion_j_kg=3.7e5,
)
_SB2SE3_KINETICS = KineticsParameters(
    k_max_per_s=2.0e6,
    optimal_temperature_k=560.0,
    window_sigma_k=80.0,
    avrami_exponent=2.0,
    critical_quench_rate_k_per_s=5.0e8,
)

_RECORDS: Dict[str, MaterialRecord] = {
    "GST": MaterialRecord(
        name="GST",
        nk_amorphous_1550=(3.94, 0.045),
        nk_crystalline_1550=(6.11, 0.83),
        resonance_amorphous_ev=2.4,
        resonance_crystalline_ev=1.8,
        damping_amorphous_ev=1.0,
        damping_crystalline_ev=1.2,
        thermal=_GST_THERMAL,
        kinetics=_GST_KINETICS,
    ),
    "GSST": MaterialRecord(
        name="GSST",
        nk_amorphous_1550=(3.33, 0.002),
        nk_crystalline_1550=(5.08, 0.35),
        resonance_amorphous_ev=2.6,
        resonance_crystalline_ev=2.0,
        damping_amorphous_ev=0.9,
        damping_crystalline_ev=1.1,
        thermal=_GSST_THERMAL,
        kinetics=_GSST_KINETICS,
    ),
    "Sb2Se3": MaterialRecord(
        name="Sb2Se3",
        nk_amorphous_1550=(3.285, 1e-4),
        nk_crystalline_1550=(4.05, 2e-4),
        resonance_amorphous_ev=2.9,
        resonance_crystalline_ev=2.5,
        damping_amorphous_ev=0.8,
        damping_crystalline_ev=0.9,
        thermal=_SB2SE3_THERMAL,
        kinetics=_SB2SE3_KINETICS,
    ),
}


def get_record(name: str) -> MaterialRecord:
    """Look up the raw :class:`MaterialRecord` for a material name."""
    key = _canonical(name)
    return _RECORDS[key]


def get_material(name: str):
    """Build a :class:`repro.materials.pcm.PhaseChangeMaterial` by name."""
    from .pcm import PhaseChangeMaterial

    return PhaseChangeMaterial.from_record(get_record(name))


def _canonical(name: str) -> str:
    lookup = {n.lower(): n for n in _RECORDS}
    try:
        return lookup[name.lower()]
    except KeyError:
        raise MaterialError(
            f"unknown material {name!r}; known: {sorted(_RECORDS)}"
        ) from None
