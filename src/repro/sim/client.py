"""Clients for the async evaluation service (:mod:`repro.sim.server`).

Two transports, one wire format:

* ``http://host:port`` — the daemon's HTTP endpoint, spoken by the sync
  :class:`EvalClient` (stdlib ``http.client``) and the
  :class:`AsyncEvalClient` (raw asyncio streams).
* ``unix:///path/to.sock`` — the newline-delimited-JSON line protocol
  over a unix socket (both clients).

``REPRO_EVAL_SERVER`` names the default server address, which is how
``exp/fig9.py`` and the ``python -m repro.sim query`` CLI find a warm
daemon.  Responses deserialize back into :class:`SimStats` that are
bit-identical to a local :func:`repro.sim.engine.evaluate_cell` call
(Python floats survive JSON exactly).

**Transient failures.**  Connection-level problems — refused connects,
resets, a daemon restarting mid-sweep — raise :class:`TransportError`
(a :class:`SimulationError` subclass) and are retried with exponential
backoff + jitter for the idempotent operations (eval / stats / ping),
up to ``retries`` extra attempts per call.  ``POST /shutdown`` is never
retried: a shutdown whose response was lost may already have landed,
and re-sending it to the daemon that restarted in between would kill
the *new* daemon.  Structured server errors and malformed responses
are not retried — they are deterministic, not transient.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import sys
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .engine import EvalTask, task_to_dict
from .server import MAX_BODY_BYTES, MAX_HEADER_LINES
from .stats import SimStats
from .sweep import SweepSpec

#: Environment variable naming the default evaluation-server address;
#: when set, ``exp/fig9.py`` routes its grid through the daemon.
SERVER_ENV_VAR = "REPRO_EVAL_SERVER"

DEFAULT_TIMEOUT = 600.0

#: Extra attempts after a transport failure of an idempotent call.
DEFAULT_RETRIES = 2

#: Base backoff before the first retry (seconds); doubles per attempt,
#: with multiplicative jitter in [0.5, 1.5).
DEFAULT_BACKOFF = 0.2

#: Ceiling on the un-jittered retry delay (seconds).  ``backoff *
#: 2**attempt`` is unbounded — at a high attempt count (the fabric's
#: ``cell_attempts`` budget compounds with per-call retries) a single
#: cell could sleep for minutes; the cap keeps the worst wait bounded
#: while preserving the early exponential spread.
DEFAULT_MAX_BACKOFF = 30.0

#: Operations that must make exactly one attempt, whatever ``retries``
#: says: a lost shutdown response may mean the shutdown *landed*, and
#: re-sending it would take down a daemon that restarted in between.
NON_IDEMPOTENT_OPS = frozenset({"shutdown"})


class TransportError(SimulationError):
    """A connection-level failure (refused, reset, timed out, closed
    before a complete response) — transient, safe to retry for
    idempotent operations.  Malformed-but-complete responses stay
    plain :class:`SimulationError`: a server sending garbage will send
    the same garbage again."""


def _retry_delay(backoff: float, attempt: int,
                 max_backoff: float = DEFAULT_MAX_BACKOFF) -> float:
    """Exponential backoff with multiplicative jitter, capped.

    Jitter spreads a fleet of clients hammering a restarted daemon
    back out in time instead of having every retry land in the same
    instant (the thundering-herd failure mode a fabric run exposes).
    ``max_backoff`` bounds the un-jittered delay so a deep attempt
    count never turns into a multi-minute sleep on one cell.
    """
    return min(backoff * (2 ** attempt), max_backoff) * \
        (0.5 + random.random())


def default_server() -> Optional[str]:
    """The ``$REPRO_EVAL_SERVER`` address, or ``None``."""
    return os.environ.get(SERVER_ENV_VAR) or None


def _split_address(address: Optional[str]) -> Tuple[str, Any]:
    """Normalize an address into ``("http", (host, port))`` or
    ``("unix", path)``."""
    address = address or default_server()
    if not address:
        raise SimulationError(
            f"no evaluation server address: pass one explicitly or set "
            f"${SERVER_ENV_VAR}")
    if address.startswith("unix://"):
        path = address[len("unix://"):]
        if not path:
            raise SimulationError(f"empty unix socket path in {address!r}")
        return "unix", path
    if "://" not in address:
        address = "http://" + address
    parsed = urllib.parse.urlsplit(address)
    if parsed.scheme != "http":
        raise SimulationError(
            f"unsupported server scheme {parsed.scheme!r} in {address!r}; "
            f"use http://host:port or unix:///path")
    if not parsed.hostname or not parsed.port:
        raise SimulationError(
            f"server address {address!r} needs an explicit host and port")
    return "http", (parsed.hostname, parsed.port)


def _check_reply(reply: Any, status: Optional[int] = None) -> Dict[str, Any]:
    """Raise the server's structured error, or return the ok payload."""
    if not isinstance(reply, dict):
        raise SimulationError(f"malformed server reply: {reply!r}")
    if not reply.get("ok", False):
        error = reply.get("error", "unknown server error")
        prefix = f"server error ({status}): " if status else "server error: "
        raise SimulationError(prefix + str(error))
    return reply


def _results_to_stats(tasks: Sequence[EvalTask], reply: Dict[str, Any]) \
        -> Dict[EvalTask, SimStats]:
    """Zip an eval reply back onto the requested tasks (server order ==
    request order; the echoed task dict is cross-checked)."""
    results = reply.get("results")
    if not isinstance(results, list) or len(results) != len(tasks):
        raise SimulationError(
            f"server returned {len(results) if isinstance(results, list) else 'malformed'} "
            f"results for {len(tasks)} tasks")
    lookup: Dict[EvalTask, SimStats] = {}
    for task, row in zip(tasks, results):
        echoed = row.get("task")
        if echoed != task_to_dict(task):
            raise SimulationError(
                f"server reply out of order: expected {task.describe()}, "
                f"got {echoed!r}")
        lookup[task] = SimStats.from_dict(row["stats"])
    return lookup


class EvalClient:
    """Synchronous client (HTTP or unix line protocol).

    ``EvalClient()`` with no address uses ``$REPRO_EVAL_SERVER``.
    ``retries`` extra attempts (exponential backoff from ``backoff``
    seconds, jittered) absorb transient transport failures of the
    idempotent operations; shutdown always makes exactly one attempt.
    """

    def __init__(self, address: Optional[str] = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF) -> None:
        self.transport, self.target = _split_address(address)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff

    # -- transport ----------------------------------------------------------

    def _http_request(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None) \
            -> Tuple[int, Any]:
        host, port = self.target
        connection = http.client.HTTPConnection(host, port,
                                                timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            headers = {"Content-Type": "application/json"} \
                if body is not None else {}
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise TransportError(
                    f"evaluation server {host}:{port} unreachable: "
                    f"{error}") from error
            try:
                return response.status, json.loads(raw)
            except json.JSONDecodeError as error:
                raise SimulationError(
                    f"malformed server response: {error}") from error
        finally:
            connection.close()

    def _line_request(self, payload: Dict[str, Any]) -> Any:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.target)
                sock.sendall(json.dumps(payload).encode() + b"\n")
                with sock.makefile("rb") as stream:
                    line = stream.readline()
        except OSError as error:
            raise TransportError(
                f"evaluation server unix://{self.target} unreachable: "
                f"{error}") from error
        if not line:
            raise TransportError("evaluation server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise SimulationError(
                f"malformed server response: {error}") from error

    def _call_once(self, op: str, path: str, method: str,
                   payload: Optional[Dict[str, Any]] = None) \
            -> Dict[str, Any]:
        if self.transport == "unix":
            message = dict(payload or {})
            message["op"] = op
            return _check_reply(self._line_request(message))
        status, reply = self._http_request(method, path, payload)
        return _check_reply(reply, status)

    def _call(self, op: str, path: str, method: str,
              payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        attempts = 1 if op in NON_IDEMPOTENT_OPS else self.retries + 1
        for attempt in range(attempts):
            if attempt:
                time.sleep(_retry_delay(self.backoff, attempt - 1,
                                        self.max_backoff))
            try:
                return self._call_once(op, path, method, payload)
            except TransportError:
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")

    # -- queries ------------------------------------------------------------

    def eval_tasks(self, tasks: Sequence[EvalTask],
                   latencies: bool = True) -> Dict[EvalTask, SimStats]:
        """Evaluate a batch; returns ``{task: stats}`` (server-side
        read-through / coalescing / compute as needed)."""
        tasks = list(tasks)
        if not tasks:
            return {}
        payload = {"tasks": [task_to_dict(task) for task in tasks],
                   "latencies": latencies}
        reply = self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(tasks, reply)

    def eval_cell(self, task: EvalTask, latencies: bool = True) -> SimStats:
        """Evaluate one cell."""
        return self.eval_tasks([task], latencies=latencies)[task]

    def eval_sweep(self, spec: SweepSpec,
                   latencies: bool = True) -> Dict[EvalTask, SimStats]:
        """Evaluate a full sweep spec server-side."""
        payload = {"sweep": spec.to_dict(), "latencies": latencies}
        reply = self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(spec.tasks(), reply)

    def stats(self) -> Dict[str, Any]:
        """The daemon's ``/stats`` counters."""
        return self._call("stats", "/stats", "GET")["stats"]

    def health(self) -> Dict[str, Any]:
        """The daemon's health payload (``GET /healthz`` / op ping):
        ``ok``, uptime, in-flight count, pool kind and size.  Raises on
        an unreachable daemon — use :meth:`ping` for a boolean probe."""
        if self.transport == "unix":
            return self._call("ping", "", "")
        return self._call("ping", "/healthz", "GET")

    def ping(self) -> bool:
        """True iff the daemon answers its health check."""
        try:
            return bool(self.health().get("ok"))
        except SimulationError:
            return False

    def shutdown(self) -> None:
        """Ask the daemon to exit cleanly."""
        self._call("shutdown", "/shutdown", "POST")


class AsyncEvalClient:
    """Asyncio client: same wire format, non-blocking transports.

    HTTP requests open one connection per call (the server speaks
    ``Connection: close``); unix line-protocol calls do the same for
    simplicity.  All methods mirror :class:`EvalClient`, including the
    retry policy (idempotent ops only, shutdown never).  Connections
    are opened with ``limit=MAX_BODY_BYTES`` — the server's own cap —
    so a latency-bearing response bigger than asyncio's 64 KiB default
    stream limit parses instead of surfacing a raw
    ``LimitOverrunError`` from ``readline()``.
    """

    def __init__(self, address: Optional[str] = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF) -> None:
        self.transport, self.target = _split_address(address)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff

    async def _read_line(self, reader: "Any", what: str) -> bytes:
        """One bounded line read with every failure mode structured:
        timeouts and closed connections are transport (retryable),
        limit overruns are malformed-response errors (not)."""
        import asyncio

        try:
            return await asyncio.wait_for(reader.readline(), self.timeout)
        except asyncio.TimeoutError as error:
            raise TransportError(
                f"evaluation server timed out reading {what}") from error
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise SimulationError(
                f"server {what} exceeds the {MAX_BODY_BYTES}-byte stream "
                f"limit; request latencies=False for very large cells"
            ) from error
        except OSError as error:
            # A reset/aborted connection mid-read is transport, exactly
            # like a refused connect.
            raise TransportError(
                f"evaluation server connection failed reading {what}: "
                f"{error}") from error

    async def _http_request(self, method: str, path: str,
                            payload: Optional[Dict[str, Any]] = None) \
            -> Tuple[int, Any]:
        import asyncio

        host, port = self.target
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=MAX_BODY_BYTES),
                self.timeout)
        except (OSError, asyncio.TimeoutError) as error:
            raise TransportError(
                f"evaluation server {host}:{port} unreachable: "
                f"{error}") from error
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else b""
            head = (f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n").encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            status_line = await self._read_line(reader, "HTTP status line")
            if not status_line:
                # EOF before a single response byte — the daemon died
                # between accept and reply (a restart race), so this is
                # transport, not a malformed response.
                raise TransportError(
                    "evaluation server closed the connection before "
                    "responding")
            try:
                status = int(status_line.split()[1])
            except (IndexError, ValueError):
                raise SimulationError(
                    f"malformed HTTP status line: {status_line!r}") from None
            length = 0
            header_lines = 0
            while True:
                line = await self._read_line(reader, "HTTP header line")
                if line in (b"\r\n", b"\n", b""):
                    break
                header_lines += 1
                if header_lines > MAX_HEADER_LINES:
                    # A runaway (or malicious) peer streaming headers
                    # forever must not pin the client in this loop.
                    raise SimulationError(
                        f"server response has more than "
                        f"{MAX_HEADER_LINES} header lines")
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError:
                        # The structured malformed-response path every
                        # other parse failure takes — never a raw
                        # ValueError escaping to the caller.
                        raise SimulationError(
                            f"malformed Content-Length header: "
                            f"{value.strip()!r}") from None
            if length < 0:
                raise SimulationError(
                    f"malformed Content-Length header: {length}")
            try:
                raw = await asyncio.wait_for(reader.readexactly(length),
                                             self.timeout)
            except asyncio.TimeoutError as error:
                raise TransportError(
                    "evaluation server timed out mid-response") from error
            try:
                return status, json.loads(raw)
            except json.JSONDecodeError as error:
                raise SimulationError(
                    f"malformed server response: {error}") from error
        except asyncio.IncompleteReadError as error:
            raise TransportError(
                f"evaluation server closed mid-response: {error}") from error
        except OSError as error:
            # Write-side resets (the peer dropped us while we sent the
            # request) are transport failures too.
            raise TransportError(
                f"evaluation server connection failed: {error}") from error
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _line_request(self, payload: Dict[str, Any]) -> Any:
        import asyncio

        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(self.target,
                                             limit=MAX_BODY_BYTES),
                self.timeout)
        except (OSError, asyncio.TimeoutError) as error:
            raise TransportError(
                f"evaluation server unix://{self.target} unreachable: "
                f"{error}") from error
        try:
            try:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
            except OSError as error:
                raise TransportError(
                    f"evaluation server connection failed: "
                    f"{error}") from error
            line = await self._read_line(reader, "line-protocol response")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not line:
            raise TransportError("evaluation server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise SimulationError(
                f"malformed server response: {error}") from error

    async def _call_once(self, op: str, path: str, method: str,
                         payload: Optional[Dict[str, Any]] = None) \
            -> Dict[str, Any]:
        if self.transport == "unix":
            message = dict(payload or {})
            message["op"] = op
            return _check_reply(await self._line_request(message))
        status, reply = await self._http_request(method, path, payload)
        return _check_reply(reply, status)

    async def _call(self, op: str, path: str, method: str,
                    payload: Optional[Dict[str, Any]] = None) \
            -> Dict[str, Any]:
        import asyncio

        attempts = 1 if op in NON_IDEMPOTENT_OPS else self.retries + 1
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(_retry_delay(self.backoff, attempt - 1,
                                                 self.max_backoff))
            try:
                return await self._call_once(op, path, method, payload)
            except TransportError:
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")

    async def eval_tasks(self, tasks: Sequence[EvalTask],
                         latencies: bool = True) -> Dict[EvalTask, SimStats]:
        tasks = list(tasks)
        if not tasks:
            return {}
        payload = {"tasks": [task_to_dict(task) for task in tasks],
                   "latencies": latencies}
        reply = await self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(tasks, reply)

    async def eval_cell(self, task: EvalTask,
                        latencies: bool = True) -> SimStats:
        return (await self.eval_tasks([task], latencies=latencies))[task]

    async def eval_sweep(self, spec: SweepSpec,
                         latencies: bool = True) -> Dict[EvalTask, SimStats]:
        payload = {"sweep": spec.to_dict(), "latencies": latencies}
        reply = await self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(spec.tasks(), reply)

    async def stats(self) -> Dict[str, Any]:
        return (await self._call("stats", "/stats", "GET"))["stats"]

    async def health(self) -> Dict[str, Any]:
        """The daemon's health payload, as :meth:`EvalClient.health`."""
        if self.transport == "unix":
            return await self._call("ping", "", "")
        return await self._call("ping", "/healthz", "GET")

    async def ping(self) -> bool:
        """True iff the daemon answers its health check (the membership
        prober's probe; mirrors :meth:`EvalClient.ping`)."""
        try:
            return bool((await self.health()).get("ok"))
        except SimulationError:
            return False

    async def shutdown(self) -> None:
        await self._call("shutdown", "/shutdown", "POST")


def evaluate_tasks_remote(tasks: Sequence[EvalTask],
                          address: Optional[str] = None,
                          latencies: bool = True) \
        -> Dict[EvalTask, SimStats]:
    """One-shot remote evaluation (the fig9 read-through path)."""
    return EvalClient(address).eval_tasks(tasks, latencies=latencies)


def query_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim query`` — one query against a daemon."""
    import argparse

    from .factory import ARCHITECTURE_NAMES
    from .tracegen import WORKLOAD_NAMES

    parser = argparse.ArgumentParser(
        prog="repro.sim query",
        description="Query a running evaluation daemon (see "
                    "'python -m repro.sim serve').",
    )
    parser.add_argument("--server", default=None,
                        help=f"daemon address (default: ${SERVER_ENV_VAR}); "
                             f"http://host:port or unix:///path")
    parser.add_argument("--arch", choices=ARCHITECTURE_NAMES)
    parser.add_argument("--workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--stats", action="store_true",
                        help="print the daemon's /stats counters and exit")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to exit cleanly")
    args = parser.parse_args(argv)
    try:
        client = EvalClient(args.server)
        if args.stats:
            for key, value in sorted(client.stats().items()):
                print(f"{key:12s}: {value}")
            return 0
        if args.shutdown:
            client.shutdown()
            print("shutdown requested")
            return 0
        if not args.arch or not args.workload:
            parser.error("--arch and --workload are required for an "
                         "evaluation query (or use --stats/--shutdown)")
        task = EvalTask(args.arch, args.workload, args.requests, args.seed,
                        args.queue_depth)
        stats = client.eval_cell(task)
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    row = stats.as_row()
    print(f"architecture : {stats.device_name}")
    print(f"workload     : {stats.workload_name}")
    print(f"requests     : {stats.num_requests} "
          f"({stats.num_reads} R / {stats.num_writes} W)")
    print(f"bandwidth    : {row['bandwidth_gbps']:.2f} GB/s")
    print(f"avg latency  : {row['avg_latency_ns']:.1f} ns "
          f"(p95 {row['p95_latency_ns']:.1f} ns)")
    print(f"EPB          : {row['epb_pj']:.1f} pJ/bit")
    print(f"BW/EPB       : {row['bw_per_epb']:.4f}")
    return 0
